// Linear system solver / factorization PolyBench kernels.
#include <cmath>

#include "polybench/kernels.hpp"

namespace luis::polybench::detail {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;

namespace {
constexpr double kPlaceholder = 1000.0; // replaced by profiling
}

void make_spd(std::vector<double>& a, std::int64_t n) {
  // PolyBench recipe: lower-triangular seed, then A <- A * A^T.
  std::vector<double> seed(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j)
      seed[static_cast<std::size_t>(i * n + j)] =
          static_cast<double>(-j % n) / n + 1.0;
    seed[static_cast<std::size_t>(i * n + i)] = 1.0;
  }
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t s = 0; s < n; ++s) {
      double acc = 0.0;
      for (std::int64_t t = 0; t < n; ++t)
        acc += seed[static_cast<std::size_t>(r * n + t)] *
               seed[static_cast<std::size_t>(s * n + t)];
      a[static_cast<std::size_t>(r * n + s)] = acc;
    }
  }
}

BuiltKernel build_cholesky(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(18, size);
  BuiltKernel k;
  k.name = "cholesky";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", kb.idx(0), i, [&](IVal j) {
      kb.for_loop("kk", kb.idx(0), j, [&](IVal kk) {
        kb.store(kb.load(A, {i, j}) - kb.load(A, {i, kk}) * kb.load(A, {j, kk}),
                 A, {i, j});
      });
      kb.store(kb.load(A, {i, j}) / kb.load(A, {j, j}), A, {i, j});
    });
    kb.for_loop("kk", kb.idx(0), i, [&](IVal kk) {
      kb.store(kb.load(A, {i, i}) - kb.load(A, {i, kk}) * kb.load(A, {i, kk}),
               A, {i, i});
    });
    kb.store(kb.sqrt(kb.load(A, {i, i})), A, {i, i});
  });
  k.function = kb.finish();
  auto& a = k.inputs["A"];
  a.resize(static_cast<std::size_t>(N * N));
  make_spd(a, N);
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_lu(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(18, size);
  BuiltKernel k;
  k.name = "lu";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", kb.idx(0), i, [&](IVal j) {
      kb.for_loop("kk", kb.idx(0), j, [&](IVal kk) {
        kb.store(kb.load(A, {i, j}) - kb.load(A, {i, kk}) * kb.load(A, {kk, j}),
                 A, {i, j});
      });
      kb.store(kb.load(A, {i, j}) / kb.load(A, {j, j}), A, {i, j});
    });
    kb.for_loop("j", i, kb.idx(N), [&](IVal j) {
      kb.for_loop("kk", kb.idx(0), i, [&](IVal kk) {
        kb.store(kb.load(A, {i, j}) - kb.load(A, {i, kk}) * kb.load(A, {kk, j}),
                 A, {i, j});
      });
    });
  });
  k.function = kb.finish();
  auto& a = k.inputs["A"];
  a.resize(static_cast<std::size_t>(N * N));
  make_spd(a, N);
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_ludcmp(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(18, size);
  BuiltKernel k;
  k.name = "ludcmp";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  Array* b = kb.array("b", {N}, -kPlaceholder, kPlaceholder);
  Array* x = kb.array("x", {N}, -kPlaceholder, kPlaceholder);
  Array* y = kb.array("y", {N}, -kPlaceholder, kPlaceholder);
  ScalarCell w = kb.scalar("w", -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", kb.idx(0), i, [&](IVal j) {
      kb.set(w, kb.load(A, {i, j}));
      kb.for_loop("kk", kb.idx(0), j, [&](IVal kk) {
        kb.set(w, kb.get(w) - kb.load(A, {i, kk}) * kb.load(A, {kk, j}));
      });
      kb.store(kb.get(w) / kb.load(A, {j, j}), A, {i, j});
    });
    kb.for_loop("j", i, kb.idx(N), [&](IVal j) {
      kb.set(w, kb.load(A, {i, j}));
      kb.for_loop("kk", kb.idx(0), i, [&](IVal kk) {
        kb.set(w, kb.get(w) - kb.load(A, {i, kk}) * kb.load(A, {kk, j}));
      });
      kb.store(kb.get(w), A, {i, j});
    });
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.set(w, kb.load(b, {i}));
    kb.for_loop("j", kb.idx(0), i, [&](IVal j) {
      kb.set(w, kb.get(w) - kb.load(A, {i, j}) * kb.load(y, {j}));
    });
    kb.store(kb.get(w), y, {i});
  });
  kb.for_down("i", N - 1, 0, [&](IVal i) {
    kb.set(w, kb.load(y, {i}));
    kb.for_loop("j", i + 1, kb.idx(N), [&](IVal j) {
      kb.set(w, kb.get(w) - kb.load(A, {i, j}) * kb.load(x, {j}));
    });
    kb.store(kb.get(w) / kb.load(A, {i, i}), x, {i});
  });
  k.function = kb.finish();
  auto& a = k.inputs["A"];
  a.resize(static_cast<std::size_t>(N * N));
  make_spd(a, N);
  const double fn = static_cast<double>(N);
  init1(k.inputs, "b", N, [&](auto i) { return (i + 1) / fn / 2.0 + 4.0; });
  init1(k.inputs, "x", N, [](auto) { return 0.0; });
  init1(k.inputs, "y", N, [](auto) { return 0.0; });
  k.inputs["w"].assign(1, 0.0);
  k.outputs = {"x"};
  return k;
}

BuiltKernel build_durbin(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(22, size);
  BuiltKernel k;
  k.name = "durbin";
  KernelBuilder kb(m, k.name);
  Array* r = kb.array("r", {N}, -kPlaceholder, kPlaceholder);
  Array* y = kb.array("y", {N}, -kPlaceholder, kPlaceholder);
  Array* z = kb.array("z", {N}, -kPlaceholder, kPlaceholder);
  ScalarCell alpha = kb.scalar("alpha", -kPlaceholder, kPlaceholder);
  ScalarCell beta = kb.scalar("beta", -kPlaceholder, kPlaceholder);
  ScalarCell sum = kb.scalar("sum", -kPlaceholder, kPlaceholder);

  kb.store(kb.neg(kb.load(r, {kb.idx(0)})), y, {kb.idx(0)});
  kb.set(beta, kb.real(1.0));
  kb.set(alpha, kb.neg(kb.load(r, {kb.idx(0)})));
  kb.for_loop("kk", 1, N, [&](IVal kk) {
    kb.set(beta, (kb.real(1.0) - kb.get(alpha) * kb.get(alpha)) * kb.get(beta));
    kb.set(sum, kb.real(0.0));
    kb.for_loop("i", kb.idx(0), kk, [&](IVal i) {
      kb.set(sum, kb.get(sum) + kb.load(r, {kk - 1 - i}) * kb.load(y, {i}));
    });
    kb.set(alpha, kb.neg((kb.load(r, {kk}) + kb.get(sum)) / kb.get(beta)));
    kb.for_loop("i", kb.idx(0), kk, [&](IVal i) {
      kb.store(kb.load(y, {i}) + kb.get(alpha) * kb.load(y, {kk - 1 - i}),
               z, {i});
    });
    kb.for_loop("i", kb.idx(0), kk, [&](IVal i) {
      kb.store(kb.load(z, {i}), y, {i});
    });
    kb.store(kb.get(alpha), y, {kk});
  });
  k.function = kb.finish();
  init1(k.inputs, "r", N, [&](auto i) { return static_cast<double>(N + 1 - i); });
  init1(k.inputs, "y", N, [](auto) { return 0.0; });
  init1(k.inputs, "z", N, [](auto) { return 0.0; });
  k.inputs["alpha"].assign(1, 0.0);
  k.inputs["beta"].assign(1, 0.0);
  k.inputs["sum"].assign(1, 0.0);
  k.outputs = {"y"};
  return k;
}

BuiltKernel build_gramschmidt(ir::Module& m, DatasetSize size) {
  const std::int64_t M = scaled(14, size), N = scaled(12, size);
  BuiltKernel k;
  k.name = "gramschmidt";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {M, N}, -kPlaceholder, kPlaceholder);
  Array* R = kb.array("R", {N, N}, -kPlaceholder, kPlaceholder);
  Array* Q = kb.array("Q", {M, N}, -kPlaceholder, kPlaceholder);
  ScalarCell nrm = kb.scalar("nrm", -kPlaceholder, kPlaceholder);
  kb.for_loop("kk", 0, N, [&](IVal kk) {
    kb.set(nrm, kb.real(0.0));
    kb.for_loop("i", 0, M, [&](IVal i) {
      kb.set(nrm, kb.get(nrm) + kb.load(A, {i, kk}) * kb.load(A, {i, kk}));
    });
    kb.store(kb.sqrt(kb.get(nrm)), R, {kk, kk});
    kb.for_loop("i", 0, M, [&](IVal i) {
      kb.store(kb.load(A, {i, kk}) / kb.load(R, {kk, kk}), Q, {i, kk});
    });
    kb.for_loop("j", kk + 1, kb.idx(N), [&](IVal j) {
      kb.store(kb.real(0.0), R, {kk, j});
      kb.for_loop("i", 0, M, [&](IVal i) {
        kb.store(kb.load(R, {kk, j}) + kb.load(Q, {i, kk}) * kb.load(A, {i, j}),
                 R, {kk, j});
      });
      kb.for_loop("i", 0, M, [&](IVal i) {
        kb.store(kb.load(A, {i, j}) - kb.load(Q, {i, kk}) * kb.load(R, {kk, j}),
                 A, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "A", M, N, [&](auto i, auto j) {
    return (static_cast<double>((i * j) % M) / M) * 100.0 + 10.0;
  });
  init2(k.inputs, "R", N, N, [](auto, auto) { return 0.0; });
  init2(k.inputs, "Q", M, N, [](auto, auto) { return 0.0; });
  k.inputs["nrm"].assign(1, 0.0);
  k.outputs = {"R", "Q"};
  return k;
}

BuiltKernel build_trisolv(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(24, size);
  BuiltKernel k;
  k.name = "trisolv";
  KernelBuilder kb(m, k.name);
  Array* L = kb.array("L", {N, N}, -kPlaceholder, kPlaceholder);
  Array* x = kb.array("x", {N}, -kPlaceholder, kPlaceholder);
  Array* b = kb.array("b", {N}, -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.store(kb.load(b, {i}), x, {i});
    kb.for_loop("j", kb.idx(0), i, [&](IVal j) {
      kb.store(kb.load(x, {i}) - kb.load(L, {i, j}) * kb.load(x, {j}), x, {i});
    });
    kb.store(kb.load(x, {i}) / kb.load(L, {i, i}), x, {i});
  });
  k.function = kb.finish();
  init1(k.inputs, "b", N, [](auto i) { return static_cast<double>(i); });
  init1(k.inputs, "x", N, [](auto) { return 0.0; });
  init2(k.inputs, "L", N, N, [&](auto i, auto j) {
    if (j > i) return 0.0; // upper triangle unused
    return static_cast<double>(i + N - j + 1) * 2.0 / N;
  });
  k.outputs = {"x"};
  return k;
}

} // namespace luis::polybench::detail
