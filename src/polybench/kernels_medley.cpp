// Data mining and medley PolyBench kernels.
#include <cmath>

#include "polybench/kernels.hpp"

namespace luis::polybench::detail {

using ir::Array;
using ir::BVal;
using ir::CmpPred;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;

namespace {
constexpr double kPlaceholder = 1000.0; // replaced by profiling
}

BuiltKernel build_correlation(ir::Module& m, DatasetSize size) {
  const std::int64_t M = scaled(14, size), N = scaled(18, size); // M attributes, N data points
  BuiltKernel k;
  k.name = "correlation";
  KernelBuilder kb(m, k.name);
  Array* data = kb.array("data", {N, M}, -kPlaceholder, kPlaceholder);
  Array* corr = kb.array("corr", {M, M}, -kPlaceholder, kPlaceholder);
  Array* mean = kb.array("mean", {M}, -kPlaceholder, kPlaceholder);
  Array* stddev = kb.array("stddev", {M}, -kPlaceholder, kPlaceholder);
  const double float_n = static_cast<double>(N);
  const double eps = 0.1;

  kb.for_loop("j", 0, M, [&](IVal j) {
    kb.store(kb.real(0.0), mean, {j});
    kb.for_loop("i", 0, N, [&](IVal i) {
      kb.store(kb.load(mean, {j}) + kb.load(data, {i, j}), mean, {j});
    });
    kb.store(kb.load(mean, {j}) / kb.real(float_n), mean, {j});
  });
  kb.for_loop("j", 0, M, [&](IVal j) {
    kb.store(kb.real(0.0), stddev, {j});
    kb.for_loop("i", 0, N, [&](IVal i) {
      RVal d = kb.load(data, {i, j}) - kb.load(mean, {j});
      kb.store(kb.load(stddev, {j}) + d * d, stddev, {j});
    });
    kb.store(kb.load(stddev, {j}) / kb.real(float_n), stddev, {j});
    kb.store(kb.sqrt(kb.load(stddev, {j})), stddev, {j});
    // Guard against near-zero variance columns (the PolyBench ternary).
    RVal sd = kb.load(stddev, {j});
    BVal tiny = kb.fcmp(CmpPred::LE, sd, kb.real(eps));
    kb.store(kb.select(tiny, kb.real(1.0), sd), stddev, {j});
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, M, [&](IVal j) {
      RVal centered = kb.load(data, {i, j}) - kb.load(mean, {j});
      kb.store(centered / (kb.real(std::sqrt(float_n)) * kb.load(stddev, {j})),
               data, {i, j});
    });
  });
  kb.for_loop("i", 0, M - 1, [&](IVal i) {
    kb.store(kb.real(1.0), corr, {i, i});
    kb.for_loop("j", i + 1, kb.idx(M), [&](IVal j) {
      kb.store(kb.real(0.0), corr, {i, j});
      kb.for_loop("kk", 0, N, [&](IVal kk) {
        kb.store(kb.load(corr, {i, j}) + kb.load(data, {kk, i}) * kb.load(data, {kk, j}),
                 corr, {i, j});
      });
      kb.store(kb.load(corr, {i, j}), corr, {j, i});
    });
  });
  kb.store(kb.real(1.0), corr, {kb.idx(M - 1), kb.idx(M - 1)});
  k.function = kb.finish();
  init2(k.inputs, "data", N, M, [&](auto i, auto j) {
    return static_cast<double>(i * j) / M + static_cast<double>(i);
  });
  k.inputs["corr"].assign(static_cast<std::size_t>(M * M), 0.0);
  k.inputs["mean"].assign(static_cast<std::size_t>(M), 0.0);
  k.inputs["stddev"].assign(static_cast<std::size_t>(M), 0.0);
  k.outputs = {"corr"};
  return k;
}

BuiltKernel build_covariance(ir::Module& m, DatasetSize size) {
  const std::int64_t M = scaled(14, size), N = scaled(18, size);
  BuiltKernel k;
  k.name = "covariance";
  KernelBuilder kb(m, k.name);
  Array* data = kb.array("data", {N, M}, -kPlaceholder, kPlaceholder);
  Array* cov = kb.array("cov", {M, M}, -kPlaceholder, kPlaceholder);
  Array* mean = kb.array("mean", {M}, -kPlaceholder, kPlaceholder);
  const double float_n = static_cast<double>(N);

  kb.for_loop("j", 0, M, [&](IVal j) {
    kb.store(kb.real(0.0), mean, {j});
    kb.for_loop("i", 0, N, [&](IVal i) {
      kb.store(kb.load(mean, {j}) + kb.load(data, {i, j}), mean, {j});
    });
    kb.store(kb.load(mean, {j}) / kb.real(float_n), mean, {j});
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, M, [&](IVal j) {
      kb.store(kb.load(data, {i, j}) - kb.load(mean, {j}), data, {i, j});
    });
  });
  kb.for_loop("i", 0, M, [&](IVal i) {
    kb.for_loop("j", i, kb.idx(M), [&](IVal j) {
      kb.store(kb.real(0.0), cov, {i, j});
      kb.for_loop("kk", 0, N, [&](IVal kk) {
        kb.store(kb.load(cov, {i, j}) + kb.load(data, {kk, i}) * kb.load(data, {kk, j}),
                 cov, {i, j});
      });
      kb.store(kb.load(cov, {i, j}) / kb.real(float_n - 1.0), cov, {i, j});
      kb.store(kb.load(cov, {i, j}), cov, {j, i});
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "data", N, M, [&](auto i, auto j) {
    return static_cast<double>(i * j) / M;
  });
  k.inputs["cov"].assign(static_cast<std::size_t>(M * M), 0.0);
  k.inputs["mean"].assign(static_cast<std::size_t>(M), 0.0);
  k.outputs = {"cov"};
  return k;
}

BuiltKernel build_deriche(ir::Module& m, DatasetSize size) {
  const std::int64_t W = scaled(16, size), H = scaled(12, size);
  BuiltKernel k;
  k.name = "deriche";
  KernelBuilder kb(m, k.name);
  Array* imgIn = kb.array("imgIn", {W, H}, -kPlaceholder, kPlaceholder);
  Array* imgOut = kb.array("imgOut", {W, H}, -kPlaceholder, kPlaceholder);
  Array* y1 = kb.array("y1", {W, H}, -kPlaceholder, kPlaceholder);
  Array* y2 = kb.array("y2", {W, H}, -kPlaceholder, kPlaceholder);
  ScalarCell xm1 = kb.scalar("xm1", -kPlaceholder, kPlaceholder);
  ScalarCell tm1 = kb.scalar("tm1", -kPlaceholder, kPlaceholder);
  ScalarCell ym1 = kb.scalar("ym1", -kPlaceholder, kPlaceholder);
  ScalarCell ym2 = kb.scalar("ym2", -kPlaceholder, kPlaceholder);
  ScalarCell xp1 = kb.scalar("xp1", -kPlaceholder, kPlaceholder);
  ScalarCell xp2 = kb.scalar("xp2", -kPlaceholder, kPlaceholder);
  ScalarCell tp1 = kb.scalar("tp1", -kPlaceholder, kPlaceholder);
  ScalarCell tp2 = kb.scalar("tp2", -kPlaceholder, kPlaceholder);
  ScalarCell yp1 = kb.scalar("yp1", -kPlaceholder, kPlaceholder);
  ScalarCell yp2 = kb.scalar("yp2", -kPlaceholder, kPlaceholder);

  // Filter coefficients (compile-time constants from alpha = 0.25).
  const double alpha = 0.25;
  const double kcoef = (1.0 - std::exp(-alpha)) * (1.0 - std::exp(-alpha)) /
                       (1.0 + 2.0 * alpha * std::exp(-alpha) - std::exp(2.0 * alpha));
  const double a1 = kcoef, a5 = kcoef;
  const double a2 = kcoef * std::exp(-alpha) * (alpha - 1.0);
  const double a6 = a2;
  const double a3 = kcoef * std::exp(-alpha) * (alpha + 1.0);
  const double a7 = a3;
  const double a4 = -kcoef * std::exp(-2.0 * alpha), a8 = a4;
  const double b1 = std::pow(2.0, -alpha);
  const double b2 = -std::exp(-2.0 * alpha);
  const double c1 = 1.0, c2 = 1.0;

  // Horizontal forward pass.
  kb.for_loop("i", 0, W, [&](IVal i) {
    kb.set(ym1, kb.real(0.0));
    kb.set(ym2, kb.real(0.0));
    kb.set(xm1, kb.real(0.0));
    kb.for_loop("j", 0, H, [&](IVal j) {
      kb.store(kb.real(a1) * kb.load(imgIn, {i, j}) + kb.real(a2) * kb.get(xm1) +
                   kb.real(b1) * kb.get(ym1) + kb.real(b2) * kb.get(ym2),
               y1, {i, j});
      kb.set(xm1, kb.load(imgIn, {i, j}));
      kb.set(ym2, kb.get(ym1));
      kb.set(ym1, kb.load(y1, {i, j}));
    });
  });
  // Horizontal backward pass.
  kb.for_loop("i", 0, W, [&](IVal i) {
    kb.set(yp1, kb.real(0.0));
    kb.set(yp2, kb.real(0.0));
    kb.set(xp1, kb.real(0.0));
    kb.set(xp2, kb.real(0.0));
    kb.for_down("j", H - 1, 0, [&](IVal j) {
      kb.store(kb.real(a3) * kb.get(xp1) + kb.real(a4) * kb.get(xp2) +
                   kb.real(b1) * kb.get(yp1) + kb.real(b2) * kb.get(yp2),
               y2, {i, j});
      kb.set(xp2, kb.get(xp1));
      kb.set(xp1, kb.load(imgIn, {i, j}));
      kb.set(yp2, kb.get(yp1));
      kb.set(yp1, kb.load(y2, {i, j}));
    });
  });
  kb.for_loop("i", 0, W, [&](IVal i) {
    kb.for_loop("j", 0, H, [&](IVal j) {
      kb.store(kb.real(c1) * (kb.load(y1, {i, j}) + kb.load(y2, {i, j})),
               imgOut, {i, j});
    });
  });
  // Vertical forward pass.
  kb.for_loop("j", 0, H, [&](IVal j) {
    kb.set(tm1, kb.real(0.0));
    kb.set(ym1, kb.real(0.0));
    kb.set(ym2, kb.real(0.0));
    kb.for_loop("i", 0, W, [&](IVal i) {
      kb.store(kb.real(a5) * kb.load(imgOut, {i, j}) + kb.real(a6) * kb.get(tm1) +
                   kb.real(b1) * kb.get(ym1) + kb.real(b2) * kb.get(ym2),
               y1, {i, j});
      kb.set(tm1, kb.load(imgOut, {i, j}));
      kb.set(ym2, kb.get(ym1));
      kb.set(ym1, kb.load(y1, {i, j}));
    });
  });
  // Vertical backward pass.
  kb.for_loop("j", 0, H, [&](IVal j) {
    kb.set(tp1, kb.real(0.0));
    kb.set(tp2, kb.real(0.0));
    kb.set(yp1, kb.real(0.0));
    kb.set(yp2, kb.real(0.0));
    kb.for_down("i", W - 1, 0, [&](IVal i) {
      kb.store(kb.real(a7) * kb.get(tp1) + kb.real(a8) * kb.get(tp2) +
                   kb.real(b1) * kb.get(yp1) + kb.real(b2) * kb.get(yp2),
               y2, {i, j});
      kb.set(tp2, kb.get(tp1));
      kb.set(tp1, kb.load(imgOut, {i, j}));
      kb.set(yp2, kb.get(yp1));
      kb.set(yp1, kb.load(y2, {i, j}));
    });
  });
  kb.for_loop("i", 0, W, [&](IVal i) {
    kb.for_loop("j", 0, H, [&](IVal j) {
      kb.store(kb.real(c2) * (kb.load(y1, {i, j}) + kb.load(y2, {i, j})),
               imgOut, {i, j});
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "imgIn", W, H, [&](auto i, auto j) {
    return static_cast<double>((313 * i + 991 * j) % 65536) / 65535.0;
  });
  for (const char* name : {"imgOut", "y1", "y2"})
    k.inputs[name].assign(static_cast<std::size_t>(W * H), 0.0);
  for (const char* name :
       {"xm1", "tm1", "ym1", "ym2", "xp1", "xp2", "tp1", "tp2", "yp1", "yp2"})
    k.inputs[name].assign(1, 0.0);
  k.outputs = {"imgOut"};
  return k;
}

BuiltKernel build_floyd_warshall(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(16, size);
  BuiltKernel k;
  k.name = "floyd-warshall";
  KernelBuilder kb(m, k.name);
  Array* paths = kb.array("paths", {N, N}, -kPlaceholder, kPlaceholder);
  kb.for_loop("kk", 0, N, [&](IVal kk) {
    kb.for_loop("i", 0, N, [&](IVal i) {
      kb.for_loop("j", 0, N, [&](IVal j) {
        RVal through = kb.load(paths, {i, kk}) + kb.load(paths, {kk, j});
        RVal direct = kb.load(paths, {i, j});
        kb.store(kb.select(direct < through, direct, through), paths, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "paths", N, N, [&](auto i, auto j) {
    double w = static_cast<double>(i * j % 7 + 1);
    if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0) w = 999.0;
    return w;
  });
  k.outputs = {"paths"};
  return k;
}

BuiltKernel build_nussinov(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(16, size);
  BuiltKernel k;
  k.name = "nussinov";
  KernelBuilder kb(m, k.name);
  Array* seq = kb.array("seq", {N}, -kPlaceholder, kPlaceholder);
  Array* table = kb.array("table", {N, N}, -kPlaceholder, kPlaceholder);
  kb.for_down("i", N - 1, 0, [&](IVal i) {
    kb.for_loop("j", i + 1, kb.idx(N), [&](IVal j) {
      // j >= i+1 >= 1, so table[i][j-1] is always in range.
      kb.store(kb.fmax(kb.load(table, {i, j}), kb.load(table, {i, j - 1})),
               table, {i, j});
      // i+1 <= j <= N-1, so table[i+1][j] is always in range.
      kb.store(kb.fmax(kb.load(table, {i, j}), kb.load(table, {i + 1, j})),
               table, {i, j});
      // Pairing term: match(seq[i], seq[j]) only when i < j-1.
      kb.if_then_else(
          i < j - 1,
          [&] {
            BVal complementary = kb.fcmp(
                CmpPred::EQ, kb.load(seq, {i}) + kb.load(seq, {j}), kb.real(3.0));
            RVal match = kb.select(complementary, kb.real(1.0), kb.real(0.0));
            kb.store(kb.fmax(kb.load(table, {i, j}),
                             kb.load(table, {i + 1, j - 1}) + match),
                     table, {i, j});
          },
          [&] {
            kb.store(kb.fmax(kb.load(table, {i, j}), kb.load(table, {i + 1, j - 1})),
                     table, {i, j});
          });
      kb.for_loop("kk", i + 1, j, [&](IVal kk) {
        kb.store(kb.fmax(kb.load(table, {i, j}),
                         kb.load(table, {i, kk}) + kb.load(table, {kk + 1, j})),
                 table, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init1(k.inputs, "seq", N, [](auto i) {
    return static_cast<double>((i + 1) % 4);
  });
  k.inputs["table"].assign(static_cast<std::size_t>(N * N), 0.0);
  k.outputs = {"table"};
  return k;
}

} // namespace luis::polybench::detail
