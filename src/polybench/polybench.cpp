#include "polybench/polybench.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "polybench/kernels.hpp"
#include "support/diag.hpp"

namespace luis::polybench {
namespace {

using Builder = BuiltKernel (*)(ir::Module&, DatasetSize);

struct Entry {
  const char* name;
  Builder build;
};

// Figure 2 row order.
constexpr std::array<Entry, 30> kKernels = {{
    {"2mm", detail::build_2mm},
    {"3mm", detail::build_3mm},
    {"adi", detail::build_adi},
    {"atax", detail::build_atax},
    {"bicg", detail::build_bicg},
    {"cholesky", detail::build_cholesky},
    {"correlation", detail::build_correlation},
    {"covariance", detail::build_covariance},
    {"deriche", detail::build_deriche},
    {"doitgen", detail::build_doitgen},
    {"durbin", detail::build_durbin},
    {"fdtd-2d", detail::build_fdtd_2d},
    {"floyd-warshall", detail::build_floyd_warshall},
    {"gemm", detail::build_gemm},
    {"gemver", detail::build_gemver},
    {"gesummv", detail::build_gesummv},
    {"gramschmidt", detail::build_gramschmidt},
    {"heat-3d", detail::build_heat_3d},
    {"jacobi-1d", detail::build_jacobi_1d},
    {"jacobi-2d", detail::build_jacobi_2d},
    {"lu", detail::build_lu},
    {"ludcmp", detail::build_ludcmp},
    {"mvt", detail::build_mvt},
    {"nussinov", detail::build_nussinov},
    {"seidel-2d", detail::build_seidel_2d},
    {"symm", detail::build_symm},
    {"syr2k", detail::build_syr2k},
    {"syrk", detail::build_syrk},
    {"trisolv", detail::build_trisolv},
    {"trmm", detail::build_trmm},
}};

} // namespace

std::span<const std::string> kernel_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Entry& e : kKernels) out.emplace_back(e.name);
    return out;
  }();
  return names;
}

BuiltKernel build_kernel(const std::string& name, ir::Module& module,
                         bool annotate, DatasetSize size) {
  for (const Entry& e : kKernels) {
    if (name == e.name) {
      BuiltKernel kernel = e.build(module, size);
      if (annotate) annotate_from_profile(kernel);
      return kernel;
    }
  }
  LUIS_FATAL("unknown PolyBench kernel: " + name);
}

void annotate_from_profile(BuiltKernel& kernel, double margin) {
  LUIS_ASSERT(kernel.function != nullptr, "kernel has no function");
  interp::ArrayStore store = kernel.inputs; // copy: the profile run mutates
  interp::TypeAssignment binary64;          // reference representation
  interp::RunOptions opt;
  opt.track_array_ranges = true;
  opt.count_costs = false;
  const interp::RunResult run =
      run_function(*kernel.function, binary64, store, opt);
  LUIS_ASSERT(run.ok, "profiling run failed for " + kernel.name + ": " + run.error);

  for (const auto& arr : kernel.function->arrays()) {
    const auto it = run.array_ranges.find(arr->name());
    if (it == run.array_ranges.end()) continue;
    double lo = it->second.first;
    double hi = it->second.second;
    const double mag = std::max({std::abs(lo), std::abs(hi), 1e-6});
    lo -= margin * mag;
    hi += margin * mag;
    arr->annotate_range(lo, hi);
  }
}

} // namespace luis::polybench
