// Stencil PolyBench kernels.
#include "polybench/kernels.hpp"

namespace luis::polybench::detail {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;

namespace {
constexpr double kPlaceholder = 1000.0; // replaced by profiling
}

BuiltKernel build_jacobi_1d(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(30, size), TSTEPS = scaled(8, size);
  BuiltKernel k;
  k.name = "jacobi-1d";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {N}, -kPlaceholder, kPlaceholder);
  RVal third = kb.real(0.33333);
  kb.for_loop("t", 0, TSTEPS, [&](IVal) {
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.store(third * (kb.load(A, {i - 1}) + kb.load(A, {i}) + kb.load(A, {i + 1})),
               B, {i});
    });
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.store(third * (kb.load(B, {i - 1}) + kb.load(B, {i}) + kb.load(B, {i + 1})),
               A, {i});
    });
  });
  k.function = kb.finish();
  init1(k.inputs, "A", N, [&](auto i) { return (i + 2.0) / N; });
  init1(k.inputs, "B", N, [&](auto i) { return (i + 3.0) / N; });
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_jacobi_2d(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(14, size), TSTEPS = scaled(6, size);
  BuiltKernel k;
  k.name = "jacobi-2d";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {N, N}, -kPlaceholder, kPlaceholder);
  RVal fifth = kb.real(0.2);
  auto relax = [&](Array* src, Array* dst) {
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.for_loop("j", 1, N - 1, [&](IVal j) {
        kb.store(fifth * (kb.load(src, {i, j}) + kb.load(src, {i, j - 1}) +
                          kb.load(src, {i, j + 1}) + kb.load(src, {i + 1, j}) +
                          kb.load(src, {i - 1, j})),
                 dst, {i, j});
      });
    });
  };
  kb.for_loop("t", 0, TSTEPS, [&](IVal) {
    relax(A, B);
    relax(B, A);
  });
  k.function = kb.finish();
  init2(k.inputs, "A", N, N, [&](auto i, auto j) { return i * (j + 2.0) / N; });
  init2(k.inputs, "B", N, N, [&](auto i, auto j) { return i * (j + 3.0) / N; });
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_seidel_2d(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(14, size), TSTEPS = scaled(5, size);
  BuiltKernel k;
  k.name = "seidel-2d";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  RVal ninth = kb.real(1.0 / 9.0);
  kb.for_loop("t", 0, TSTEPS, [&](IVal) {
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.for_loop("j", 1, N - 1, [&](IVal j) {
        RVal acc = kb.load(A, {i - 1, j - 1}) + kb.load(A, {i - 1, j}) +
                   kb.load(A, {i - 1, j + 1}) + kb.load(A, {i, j - 1}) +
                   kb.load(A, {i, j}) + kb.load(A, {i, j + 1}) +
                   kb.load(A, {i + 1, j - 1}) + kb.load(A, {i + 1, j}) +
                   kb.load(A, {i + 1, j + 1});
        kb.store(acc * ninth, A, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "A", N, N, [&](auto i, auto j) {
    return (i * (j + 2.0) + 2.0) / N;
  });
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_fdtd_2d(ir::Module& m, DatasetSize size) {
  const std::int64_t NX = scaled(14, size), NY = scaled(16, size), TMAX = scaled(6, size);
  BuiltKernel k;
  k.name = "fdtd-2d";
  KernelBuilder kb(m, k.name);
  Array* ex = kb.array("ex", {NX, NY}, -kPlaceholder, kPlaceholder);
  Array* ey = kb.array("ey", {NX, NY}, -kPlaceholder, kPlaceholder);
  Array* hz = kb.array("hz", {NX, NY}, -kPlaceholder, kPlaceholder);
  Array* fict = kb.array("fict", {TMAX}, -kPlaceholder, kPlaceholder);
  kb.for_loop("t", 0, TMAX, [&](IVal t) {
    kb.for_loop("j", 0, NY, [&](IVal j) {
      kb.store(kb.load(fict, {t}), ey, {kb.idx(0), j});
    });
    kb.for_loop("i", 1, NX, [&](IVal i) {
      kb.for_loop("j", 0, NY, [&](IVal j) {
        kb.store(kb.load(ey, {i, j}) -
                     kb.real(0.5) * (kb.load(hz, {i, j}) - kb.load(hz, {i - 1, j})),
                 ey, {i, j});
      });
    });
    kb.for_loop("i", 0, NX, [&](IVal i) {
      kb.for_loop("j", 1, NY, [&](IVal j) {
        kb.store(kb.load(ex, {i, j}) -
                     kb.real(0.5) * (kb.load(hz, {i, j}) - kb.load(hz, {i, j - 1})),
                 ex, {i, j});
      });
    });
    kb.for_loop("i", 0, NX - 1, [&](IVal i) {
      kb.for_loop("j", 0, NY - 1, [&](IVal j) {
        kb.store(kb.load(hz, {i, j}) -
                     kb.real(0.7) * (kb.load(ex, {i, j + 1}) - kb.load(ex, {i, j}) +
                                     kb.load(ey, {i + 1, j}) - kb.load(ey, {i, j})),
                 hz, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "ex", NX, NY, [&](auto i, auto j) { return i * (j + 1.0) / NX; });
  init2(k.inputs, "ey", NX, NY, [&](auto i, auto j) { return i * (j + 2.0) / NY; });
  init2(k.inputs, "hz", NX, NY, [&](auto i, auto j) { return i * (j + 3.0) / NX; });
  init1(k.inputs, "fict", TMAX, [](auto i) { return static_cast<double>(i); });
  k.outputs = {"ex", "ey", "hz"};
  return k;
}

BuiltKernel build_heat_3d(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(10, size), TSTEPS = scaled(5, size);
  BuiltKernel k;
  k.name = "heat-3d";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N, N}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {N, N, N}, -kPlaceholder, kPlaceholder);
  RVal c = kb.real(0.125);
  auto relax = [&](Array* src, Array* dst) {
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.for_loop("j", 1, N - 1, [&](IVal j) {
        kb.for_loop("kk", 1, N - 1, [&](IVal kk) {
          RVal di = kb.load(src, {i + 1, j, kk}) -
                    kb.real(2.0) * kb.load(src, {i, j, kk}) +
                    kb.load(src, {i - 1, j, kk});
          RVal dj = kb.load(src, {i, j + 1, kk}) -
                    kb.real(2.0) * kb.load(src, {i, j, kk}) +
                    kb.load(src, {i, j - 1, kk});
          RVal dk = kb.load(src, {i, j, kk + 1}) -
                    kb.real(2.0) * kb.load(src, {i, j, kk}) +
                    kb.load(src, {i, j, kk - 1});
          kb.store(c * di + c * dj + c * dk + kb.load(src, {i, j, kk}), dst,
                   {i, j, kk});
        });
      });
    });
  };
  kb.for_loop("t", 0, TSTEPS, [&](IVal) {
    relax(A, B);
    relax(B, A);
  });
  k.function = kb.finish();
  init3(k.inputs, "A", N, N, N, [&](auto i, auto j, auto kk) {
    return (i + j + (N - kk)) * 10.0 / N;
  });
  k.inputs["B"] = k.inputs["A"];
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_adi(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(12, size), TSTEPS = scaled(4, size);
  BuiltKernel k;
  k.name = "adi";
  KernelBuilder kb(m, k.name);
  Array* u = kb.array("u", {N, N}, -kPlaceholder, kPlaceholder);
  Array* v = kb.array("v", {N, N}, -kPlaceholder, kPlaceholder);
  Array* p = kb.array("p", {N, N}, -kPlaceholder, kPlaceholder);
  Array* q = kb.array("q", {N, N}, -kPlaceholder, kPlaceholder);

  // Scalar coefficients: compile-time constants in PolyBench (computed
  // from N and TSTEPS literals), folded here the way Clang -O1 would.
  const double DX = 1.0 / static_cast<double>(N);
  const double DY = 1.0 / static_cast<double>(N);
  const double DT = 1.0 / static_cast<double>(TSTEPS);
  const double B1 = 2.0, B2 = 1.0;
  const double mul1 = B1 * DT / (DX * DX);
  const double mul2 = B2 * DT / (DY * DY);
  const double a = -mul1 / 2.0, b = 1.0 + mul1, c = a;
  const double d = -mul2 / 2.0, e = 1.0 + mul2, ff = d;

  kb.for_loop("t", 0, TSTEPS, [&](IVal) {
    // Column sweep.
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.store(kb.real(1.0), v, {kb.idx(0), i});
      kb.store(kb.real(0.0), p, {i, kb.idx(0)});
      kb.store(kb.load(v, {kb.idx(0), i}), q, {i, kb.idx(0)});
      kb.for_loop("j", 1, N - 1, [&](IVal j) {
        RVal denom = kb.real(a) * kb.load(p, {i, j - 1}) + kb.real(b);
        kb.store(kb.neg(kb.real(c)) / denom, p, {i, j});
        kb.store((kb.neg(kb.real(d)) * kb.load(u, {j, i - 1}) +
                  kb.real(1.0 + 2.0 * d) * kb.load(u, {j, i}) -
                  kb.real(ff) * kb.load(u, {j, i + 1}) -
                  kb.real(a) * kb.load(q, {i, j - 1})) /
                     denom,
                 q, {i, j});
      });
      kb.store(kb.real(1.0), v, {kb.idx(N - 1), i});
      kb.for_down("j", N - 2, 1, [&](IVal j) {
        kb.store(kb.load(p, {i, j}) * kb.load(v, {j + 1, i}) + kb.load(q, {i, j}),
                 v, {j, i});
      });
    });
    // Row sweep.
    kb.for_loop("i", 1, N - 1, [&](IVal i) {
      kb.store(kb.real(1.0), u, {i, kb.idx(0)});
      kb.store(kb.real(0.0), p, {i, kb.idx(0)});
      kb.store(kb.load(u, {i, kb.idx(0)}), q, {i, kb.idx(0)});
      kb.for_loop("j", 1, N - 1, [&](IVal j) {
        RVal denom = kb.real(d) * kb.load(p, {i, j - 1}) + kb.real(e);
        kb.store(kb.neg(kb.real(ff)) / denom, p, {i, j});
        kb.store((kb.neg(kb.real(a)) * kb.load(v, {i - 1, j}) +
                  kb.real(1.0 + 2.0 * a) * kb.load(v, {i, j}) -
                  kb.real(c) * kb.load(v, {i + 1, j}) -
                  kb.real(d) * kb.load(q, {i, j - 1})) /
                     denom,
                 q, {i, j});
      });
      kb.store(kb.real(1.0), u, {i, kb.idx(N - 1)});
      kb.for_down("j", N - 2, 1, [&](IVal j) {
        kb.store(kb.load(p, {i, j}) * kb.load(u, {i, j + 1}) + kb.load(q, {i, j}),
                 u, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "u", N, N, [&](auto i, auto j) {
    return (i + N - j) / static_cast<double>(N);
  });
  init2(k.inputs, "v", N, N, [](auto, auto) { return 0.0; });
  init2(k.inputs, "p", N, N, [](auto, auto) { return 0.0; });
  init2(k.inputs, "q", N, N, [](auto, auto) { return 0.0; });
  k.outputs = {"u"};
  return k;
}

} // namespace luis::polybench::detail
