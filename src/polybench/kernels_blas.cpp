// Linear-algebra (BLAS-like) PolyBench kernels.
//
// Each builder mirrors the loop structure of the PolyBench/C 4.2.1 source
// and uses the original init_array formulas. Array range annotations are
// placeholders here; annotate_from_profile replaces them after a binary64
// profiling run.
#include "polybench/kernels.hpp"

namespace luis::polybench::detail {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;

namespace {
constexpr double kPlaceholder = 100.0; // replaced by profiling
}

BuiltKernel build_gemm(ir::Module& m, DatasetSize size) {
  const std::int64_t ni = scaled(16, size), nj = scaled(18, size), nk = scaled(20, size);
  BuiltKernel k;
  k.name = "gemm";
  KernelBuilder kb(m, k.name);
  Array* C = kb.array("C", {ni, nj}, -kPlaceholder, kPlaceholder);
  Array* A = kb.array("A", {ni, nk}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {nk, nj}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, ni, [&](IVal i) {
    kb.for_loop("j", 0, nj, [&](IVal j) {
      kb.store(kb.load(C, {i, j}) * beta, C, {i, j});
    });
    kb.for_loop("kk", 0, nk, [&](IVal kk) {
      kb.for_loop("j", 0, nj, [&](IVal j) {
        kb.store(kb.load(C, {i, j}) + alpha * kb.load(A, {i, kk}) * kb.load(B, {kk, j}),
                 C, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "C", ni, nj, [&](auto i, auto j) {
    return static_cast<double>((i * j + 1) % ni) / ni;
  });
  init2(k.inputs, "A", ni, nk, [&](auto i, auto j) {
    return static_cast<double>(i * (j + 1) % nk) / nk;
  });
  init2(k.inputs, "B", nk, nj, [&](auto i, auto j) {
    return static_cast<double>(i * (j + 2) % nj) / nj;
  });
  k.outputs = {"C"};
  return k;
}

BuiltKernel build_2mm(ir::Module& m, DatasetSize size) {
  const std::int64_t ni = scaled(14, size), nj = scaled(16, size), nk = scaled(18, size), nl = scaled(20, size);
  BuiltKernel k;
  k.name = "2mm";
  KernelBuilder kb(m, k.name);
  Array* tmp = kb.array("tmp", {ni, nj}, -kPlaceholder, kPlaceholder);
  Array* A = kb.array("A", {ni, nk}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {nk, nj}, -kPlaceholder, kPlaceholder);
  Array* C = kb.array("C", {nj, nl}, -kPlaceholder, kPlaceholder);
  Array* D = kb.array("D", {ni, nl}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, ni, [&](IVal i) {
    kb.for_loop("j", 0, nj, [&](IVal j) {
      kb.store(kb.real(0.0), tmp, {i, j});
      kb.for_loop("kk", 0, nk, [&](IVal kk) {
        kb.store(kb.load(tmp, {i, j}) + alpha * kb.load(A, {i, kk}) * kb.load(B, {kk, j}),
                 tmp, {i, j});
      });
    });
  });
  kb.for_loop("i", 0, ni, [&](IVal i) {
    kb.for_loop("j", 0, nl, [&](IVal j) {
      kb.store(kb.load(D, {i, j}) * beta, D, {i, j});
      kb.for_loop("kk", 0, nj, [&](IVal kk) {
        kb.store(kb.load(D, {i, j}) + kb.load(tmp, {i, kk}) * kb.load(C, {kk, j}),
                 D, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "A", ni, nk, [&](auto i, auto j) {
    return static_cast<double>((i * j + 1) % ni) / ni;
  });
  init2(k.inputs, "B", nk, nj, [&](auto i, auto j) {
    return static_cast<double>(i * (j + 1) % nj) / nj;
  });
  init2(k.inputs, "C", nj, nl, [&](auto i, auto j) {
    return static_cast<double>((i * (j + 3) + 1) % nl) / nl;
  });
  init2(k.inputs, "D", ni, nl, [&](auto i, auto j) {
    return static_cast<double>(i * (j + 2) % nk) / nk;
  });
  k.inputs["tmp"].assign(static_cast<std::size_t>(ni * nj), 0.0);
  k.outputs = {"D"};
  return k;
}

BuiltKernel build_3mm(ir::Module& m, DatasetSize size) {
  const std::int64_t ni = scaled(12, size), nj = scaled(14, size), nk = scaled(16, size), nl = scaled(18, size), nm = scaled(20, size);
  BuiltKernel k;
  k.name = "3mm";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {ni, nk}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {nk, nj}, -kPlaceholder, kPlaceholder);
  Array* C = kb.array("C", {nj, nm}, -kPlaceholder, kPlaceholder);
  Array* D = kb.array("D", {nm, nl}, -kPlaceholder, kPlaceholder);
  Array* E = kb.array("E", {ni, nj}, -kPlaceholder, kPlaceholder);
  Array* F = kb.array("F", {nj, nl}, -kPlaceholder, kPlaceholder);
  Array* G = kb.array("G", {ni, nl}, -kPlaceholder, kPlaceholder);
  auto matmul = [&](Array* dst, Array* lhs, Array* rhs, std::int64_t rows,
                    std::int64_t cols, std::int64_t inner) {
    kb.for_loop("i", 0, rows, [&](IVal i) {
      kb.for_loop("j", 0, cols, [&](IVal j) {
        kb.store(kb.real(0.0), dst, {i, j});
        kb.for_loop("kk", 0, inner, [&](IVal kk) {
          kb.store(kb.load(dst, {i, j}) + kb.load(lhs, {i, kk}) * kb.load(rhs, {kk, j}),
                   dst, {i, j});
        });
      });
    });
  };
  matmul(E, A, B, ni, nj, nk);
  matmul(F, C, D, nj, nl, nm);
  matmul(G, E, F, ni, nl, nj);
  k.function = kb.finish();
  init2(k.inputs, "A", ni, nk, [&](auto i, auto j) {
    return static_cast<double>((i * j + 1) % ni) / (5 * ni);
  });
  init2(k.inputs, "B", nk, nj, [&](auto i, auto j) {
    return static_cast<double>((i * (j + 1) + 2) % nj) / (5 * nj);
  });
  init2(k.inputs, "C", nj, nm, [&](auto i, auto j) {
    return static_cast<double>(i * (j + 3) % nl) / (5 * nl);
  });
  init2(k.inputs, "D", nm, nl, [&](auto i, auto j) {
    return static_cast<double>((i * (j + 2) + 2) % nk) / (5 * nk);
  });
  k.outputs = {"G"};
  return k;
}

BuiltKernel build_atax(ir::Module& m, DatasetSize size) {
  const std::int64_t M = scaled(19, size), N = scaled(21, size);
  BuiltKernel k;
  k.name = "atax";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {M, N}, -kPlaceholder, kPlaceholder);
  Array* x = kb.array("x", {N}, -kPlaceholder, kPlaceholder);
  Array* y = kb.array("y", {N}, -kPlaceholder, kPlaceholder);
  Array* tmp = kb.array("tmp", {M}, -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, N, [&](IVal i) { kb.store(kb.real(0.0), y, {i}); });
  kb.for_loop("i", 0, M, [&](IVal i) {
    kb.store(kb.real(0.0), tmp, {i});
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(tmp, {i}) + kb.load(A, {i, j}) * kb.load(x, {j}), tmp, {i});
    });
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(y, {j}) + kb.load(A, {i, j}) * kb.load(tmp, {i}), y, {j});
    });
  });
  k.function = kb.finish();
  const double fn = static_cast<double>(N);
  init1(k.inputs, "x", N, [&](auto i) { return 1.0 + i / fn; });
  init2(k.inputs, "A", M, N, [&](auto i, auto j) {
    return static_cast<double>((i + j) % N) / (5.0 * M);
  });
  k.outputs = {"y"};
  return k;
}

BuiltKernel build_bicg(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(21, size), M = scaled(19, size);
  BuiltKernel k;
  k.name = "bicg";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, M}, -kPlaceholder, kPlaceholder);
  Array* s = kb.array("s", {M}, -kPlaceholder, kPlaceholder);
  Array* q = kb.array("q", {N}, -kPlaceholder, kPlaceholder);
  Array* p = kb.array("p", {M}, -kPlaceholder, kPlaceholder);
  Array* r = kb.array("r", {N}, -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, M, [&](IVal i) { kb.store(kb.real(0.0), s, {i}); });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.store(kb.real(0.0), q, {i});
    kb.for_loop("j", 0, M, [&](IVal j) {
      kb.store(kb.load(s, {j}) + kb.load(r, {i}) * kb.load(A, {i, j}), s, {j});
      kb.store(kb.load(q, {i}) + kb.load(A, {i, j}) * kb.load(p, {j}), q, {i});
    });
  });
  k.function = kb.finish();
  init1(k.inputs, "p", M, [&](auto i) { return static_cast<double>(i % M) / M; });
  init1(k.inputs, "r", N, [&](auto i) { return static_cast<double>(i % N) / N; });
  init2(k.inputs, "A", N, M, [&](auto i, auto j) {
    return static_cast<double>(i * (j + 1) % N) / N;
  });
  k.outputs = {"s", "q"};
  return k;
}

BuiltKernel build_mvt(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(22, size);
  BuiltKernel k;
  k.name = "mvt";
  KernelBuilder kb(m, k.name);
  Array* x1 = kb.array("x1", {N}, -kPlaceholder, kPlaceholder);
  Array* x2 = kb.array("x2", {N}, -kPlaceholder, kPlaceholder);
  Array* y1 = kb.array("y1", {N}, -kPlaceholder, kPlaceholder);
  Array* y2 = kb.array("y2", {N}, -kPlaceholder, kPlaceholder);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(x1, {i}) + kb.load(A, {i, j}) * kb.load(y1, {j}), x1, {i});
    });
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(x2, {i}) + kb.load(A, {j, i}) * kb.load(y2, {j}), x2, {i});
    });
  });
  k.function = kb.finish();
  init1(k.inputs, "x1", N, [&](auto i) { return static_cast<double>(i % N) / N; });
  init1(k.inputs, "x2", N, [&](auto i) { return static_cast<double>((i + 1) % N) / N; });
  init1(k.inputs, "y1", N, [&](auto i) { return static_cast<double>((i + 3) % N) / N; });
  init1(k.inputs, "y2", N, [&](auto i) { return static_cast<double>((i + 4) % N) / N; });
  init2(k.inputs, "A", N, N, [&](auto i, auto j) {
    return static_cast<double>(i * j % N) / N;
  });
  k.outputs = {"x1", "x2"};
  return k;
}

BuiltKernel build_gesummv(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(20, size);
  BuiltKernel k;
  k.name = "gesummv";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {N, N}, -kPlaceholder, kPlaceholder);
  Array* tmp = kb.array("tmp", {N}, -kPlaceholder, kPlaceholder);
  Array* x = kb.array("x", {N}, -kPlaceholder, kPlaceholder);
  Array* y = kb.array("y", {N}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.store(kb.real(0.0), tmp, {i});
    kb.store(kb.real(0.0), y, {i});
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(A, {i, j}) * kb.load(x, {j}) + kb.load(tmp, {i}), tmp, {i});
      kb.store(kb.load(B, {i, j}) * kb.load(x, {j}) + kb.load(y, {i}), y, {i});
    });
    kb.store(alpha * kb.load(tmp, {i}) + beta * kb.load(y, {i}), y, {i});
  });
  k.function = kb.finish();
  init1(k.inputs, "x", N, [&](auto i) { return static_cast<double>(i % N) / N; });
  init2(k.inputs, "A", N, N, [&](auto i, auto j) {
    return static_cast<double>((i * j + 1) % N) / N;
  });
  init2(k.inputs, "B", N, N, [&](auto i, auto j) {
    return static_cast<double>((i * j + 2) % N) / N;
  });
  k.outputs = {"y"};
  return k;
}

BuiltKernel build_gemver(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(20, size);
  BuiltKernel k;
  k.name = "gemver";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {N, N}, -kPlaceholder, kPlaceholder);
  Array* u1 = kb.array("u1", {N}, -kPlaceholder, kPlaceholder);
  Array* v1 = kb.array("v1", {N}, -kPlaceholder, kPlaceholder);
  Array* u2 = kb.array("u2", {N}, -kPlaceholder, kPlaceholder);
  Array* v2 = kb.array("v2", {N}, -kPlaceholder, kPlaceholder);
  Array* w = kb.array("w", {N}, -kPlaceholder, kPlaceholder);
  Array* x = kb.array("x", {N}, -kPlaceholder, kPlaceholder);
  Array* y = kb.array("y", {N}, -kPlaceholder, kPlaceholder);
  Array* z = kb.array("z", {N}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(A, {i, j}) + kb.load(u1, {i}) * kb.load(v1, {j}) +
                   kb.load(u2, {i}) * kb.load(v2, {j}),
               A, {i, j});
    });
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(x, {i}) + beta * kb.load(A, {j, i}) * kb.load(y, {j}), x, {i});
    });
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.store(kb.load(x, {i}) + kb.load(z, {i}), x, {i});
  });
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.store(kb.load(w, {i}) + alpha * kb.load(A, {i, j}) * kb.load(x, {j}), w, {i});
    });
  });
  k.function = kb.finish();
  const double fn = static_cast<double>(N);
  init2(k.inputs, "A", N, N, [&](auto i, auto j) {
    return static_cast<double>(i * j % N) / N;
  });
  init1(k.inputs, "u1", N, [&](auto i) { return static_cast<double>(i); });
  init1(k.inputs, "u2", N, [&](auto i) { return (i + 1) / fn / 2.0; });
  init1(k.inputs, "v1", N, [&](auto i) { return (i + 1) / fn / 4.0; });
  init1(k.inputs, "v2", N, [&](auto i) { return (i + 1) / fn / 6.0; });
  init1(k.inputs, "y", N, [&](auto i) { return (i + 1) / fn / 8.0; });
  init1(k.inputs, "z", N, [&](auto i) { return (i + 1) / fn / 9.0; });
  init1(k.inputs, "x", N, [](auto) { return 0.0; });
  init1(k.inputs, "w", N, [](auto) { return 0.0; });
  k.outputs = {"w"};
  return k;
}

BuiltKernel build_doitgen(ir::Module& m, DatasetSize size) {
  const std::int64_t NR = scaled(10, size), NQ = scaled(8, size), NP = scaled(12, size);
  BuiltKernel k;
  k.name = "doitgen";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {NR, NQ, NP}, -kPlaceholder, kPlaceholder);
  Array* C4 = kb.array("C4", {NP, NP}, -kPlaceholder, kPlaceholder);
  Array* sum = kb.array("sum", {NP}, -kPlaceholder, kPlaceholder);
  kb.for_loop("r", 0, NR, [&](IVal r) {
    kb.for_loop("q", 0, NQ, [&](IVal q) {
      kb.for_loop("p", 0, NP, [&](IVal p) {
        kb.store(kb.real(0.0), sum, {p});
        kb.for_loop("s", 0, NP, [&](IVal s) {
          kb.store(kb.load(sum, {p}) + kb.load(A, {r, q, s}) * kb.load(C4, {s, p}),
                   sum, {p});
        });
      });
      kb.for_loop("p", 0, NP, [&](IVal p) {
        kb.store(kb.load(sum, {p}), A, {r, q, p});
      });
    });
  });
  k.function = kb.finish();
  init3(k.inputs, "A", NR, NQ, NP, [&](auto i, auto j, auto kk) {
    return static_cast<double>((i * j + kk) % NP) / NP;
  });
  init2(k.inputs, "C4", NP, NP, [&](auto i, auto j) {
    return static_cast<double>(i * j % NP) / NP;
  });
  k.inputs["sum"].assign(static_cast<std::size_t>(NP), 0.0);
  k.outputs = {"A"};
  return k;
}

BuiltKernel build_symm(ir::Module& m, DatasetSize size) {
  const std::int64_t M = scaled(14, size), N = scaled(16, size);
  BuiltKernel k;
  k.name = "symm";
  KernelBuilder kb(m, k.name);
  Array* C = kb.array("C", {M, N}, -kPlaceholder, kPlaceholder);
  Array* A = kb.array("A", {M, M}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {M, N}, -kPlaceholder, kPlaceholder);
  ScalarCell temp2 = kb.scalar("temp2", -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, M, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.set(temp2, kb.real(0.0));
      kb.for_loop("kk", kb.idx(0), i, [&](IVal kk) {
        kb.store(kb.load(C, {kk, j}) + alpha * kb.load(B, {i, j}) * kb.load(A, {i, kk}),
                 C, {kk, j});
        kb.set(temp2, kb.get(temp2) + kb.load(B, {kk, j}) * kb.load(A, {i, kk}));
      });
      kb.store(beta * kb.load(C, {i, j}) + alpha * kb.load(B, {i, j}) * kb.load(A, {i, i}) +
                   alpha * kb.get(temp2),
               C, {i, j});
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "C", M, N, [&](auto i, auto j) {
    return static_cast<double>((i + j) % 100) / M;
  });
  init2(k.inputs, "B", M, N, [&](auto i, auto j) {
    return static_cast<double>((N + i - j) % 100) / M;
  });
  init2(k.inputs, "A", M, M, [&](auto i, auto j) {
    if (j <= i) return static_cast<double>((i + j) % 100) / M;
    return 0.0; // upper triangle unused by the kernel (PolyBench poisons it)
  });
  k.inputs["temp2"].assign(1, 0.0);
  k.outputs = {"C"};
  return k;
}

BuiltKernel build_syrk(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(14, size), M = scaled(12, size);
  BuiltKernel k;
  k.name = "syrk";
  KernelBuilder kb(m, k.name);
  Array* C = kb.array("C", {N, N}, -kPlaceholder, kPlaceholder);
  Array* A = kb.array("A", {N, M}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", kb.idx(0), i + 1, [&](IVal j) {
      kb.store(kb.load(C, {i, j}) * beta, C, {i, j});
    });
    kb.for_loop("kk", 0, M, [&](IVal kk) {
      kb.for_loop("j", kb.idx(0), i + 1, [&](IVal j) {
        kb.store(kb.load(C, {i, j}) + alpha * kb.load(A, {i, kk}) * kb.load(A, {j, kk}),
                 C, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "A", N, M, [&](auto i, auto j) {
    return static_cast<double>((i * j + 1) % N) / N;
  });
  init2(k.inputs, "C", N, N, [&](auto i, auto j) {
    return static_cast<double>((i * j + 2) % M) / M;
  });
  k.outputs = {"C"};
  return k;
}

BuiltKernel build_syr2k(ir::Module& m, DatasetSize size) {
  const std::int64_t N = scaled(14, size), M = scaled(12, size);
  BuiltKernel k;
  k.name = "syr2k";
  KernelBuilder kb(m, k.name);
  Array* C = kb.array("C", {N, N}, -kPlaceholder, kPlaceholder);
  Array* A = kb.array("A", {N, M}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {N, M}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5), beta = kb.real(1.2);
  kb.for_loop("i", 0, N, [&](IVal i) {
    kb.for_loop("j", kb.idx(0), i + 1, [&](IVal j) {
      kb.store(kb.load(C, {i, j}) * beta, C, {i, j});
    });
    kb.for_loop("kk", 0, M, [&](IVal kk) {
      kb.for_loop("j", kb.idx(0), i + 1, [&](IVal j) {
        kb.store(kb.load(C, {i, j}) +
                     kb.load(A, {j, kk}) * alpha * kb.load(B, {i, kk}) +
                     kb.load(B, {j, kk}) * alpha * kb.load(A, {i, kk}),
                 C, {i, j});
      });
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "A", N, M, [&](auto i, auto j) {
    return static_cast<double>((i * j + 1) % N) / N;
  });
  init2(k.inputs, "B", N, M, [&](auto i, auto j) {
    return static_cast<double>((i * j + 2) % M) / M;
  });
  init2(k.inputs, "C", N, N, [&](auto i, auto j) {
    return static_cast<double>((i * j + 3) % N) / M;
  });
  k.outputs = {"C"};
  return k;
}

BuiltKernel build_trmm(ir::Module& m, DatasetSize size) {
  const std::int64_t M = scaled(14, size), N = scaled(16, size);
  BuiltKernel k;
  k.name = "trmm";
  KernelBuilder kb(m, k.name);
  Array* A = kb.array("A", {M, M}, -kPlaceholder, kPlaceholder);
  Array* B = kb.array("B", {M, N}, -kPlaceholder, kPlaceholder);
  RVal alpha = kb.real(1.5);
  kb.for_loop("i", 0, M, [&](IVal i) {
    kb.for_loop("j", 0, N, [&](IVal j) {
      kb.for_loop("kk", i + 1, kb.idx(M), [&](IVal kk) {
        kb.store(kb.load(B, {i, j}) + kb.load(A, {kk, i}) * kb.load(B, {kk, j}),
                 B, {i, j});
      });
      kb.store(alpha * kb.load(B, {i, j}), B, {i, j});
    });
  });
  k.function = kb.finish();
  init2(k.inputs, "A", M, M, [&](auto i, auto j) {
    if (j < i) return static_cast<double>((i + j) % M) / M;
    return i == j ? 1.0 : 0.0; // strict upper triangle unused (PolyBench poisons it)
  });
  init2(k.inputs, "B", M, N, [&](auto i, auto j) {
    return static_cast<double>((N + (i - j)) % N) / N;
  });
  k.outputs = {"B"};
  return k;
}

} // namespace luis::polybench::detail
