// PolyBench/C 4.2.1 kernel suite, re-implemented on the LUIS IR.
//
// Each kernel builds the same loop nests and arithmetic as the original C
// source, with dataset sizes scaled down so that software-arithmetic
// interpretation of 30 kernels x 4 platforms x 4 configurations finishes
// in seconds (the paper runs native binaries; the *shape* of its results
// does not depend on the dataset size). Inputs use the original PolyBench
// init formulas.
//
// Range annotations are produced by a binary64 profiling run with a
// safety margin (annotate_from_profile) — the "data pre-processing
// routine" route the paper explicitly allows as an alternative to manual
// annotations.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "ir/function.hpp"

namespace luis::polybench {

/// Dataset presets: Mini is the evaluation default (sized so that the
/// whole Figure 2 grid interprets in seconds); Small and Medium scale
/// every extent by 2x and 4x for the dataset-sensitivity experiments.
enum class DatasetSize { Mini, Small, Medium };

struct BuiltKernel {
  std::string name;
  ir::Function* function = nullptr; ///< owned by the module passed to build
  interp::ArrayStore inputs;        ///< initial array contents
  std::vector<std::string> outputs; ///< arrays compared for the MPE metric
};

/// The 30 kernels, in the row order of the paper's Figure 2.
std::span<const std::string> kernel_names();

/// Builds one kernel into `module`. If `annotate` is set (default), array
/// annotations are derived from a binary64 profiling run; otherwise the
/// placeholder annotations from construction remain.
BuiltKernel build_kernel(const std::string& name, ir::Module& module,
                         bool annotate = true,
                         DatasetSize size = DatasetSize::Mini);

/// Profiles the kernel in binary64 and rewrites every array annotation to
/// the observed range plus a relative safety margin.
void annotate_from_profile(BuiltKernel& kernel, double margin = 0.05);

} // namespace luis::polybench
