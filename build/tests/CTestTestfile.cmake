# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/fixed_point_test[1]_include.cmake")
include("/root/repo/build/tests/soft_float_test[1]_include.cmake")
include("/root/repo/build/tests/posit_test[1]_include.cmake")
include("/root/repo/build/tests/iebw_test[1]_include.cmake")
include("/root/repo/build/tests/simplex_test[1]_include.cmake")
include("/root/repo/build/tests/branch_and_bound_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/vra_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/polybench_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/literal_model_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
include("/root/repo/build/tests/exact_fixed_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/error_model_test[1]_include.cmake")
include("/root/repo/build/tests/profiled_ranges_test[1]_include.cmake")
include("/root/repo/build/tests/lp_reader_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/assignment_io_test[1]_include.cmake")
