file(REMOVE_RECURSE
  "CMakeFiles/vra_test.dir/vra_test.cpp.o"
  "CMakeFiles/vra_test.dir/vra_test.cpp.o.d"
  "vra_test"
  "vra_test.pdb"
  "vra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
