# Empty compiler generated dependencies file for vra_test.
# This may be replaced when dependencies are built.
