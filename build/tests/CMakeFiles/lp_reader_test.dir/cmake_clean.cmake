file(REMOVE_RECURSE
  "CMakeFiles/lp_reader_test.dir/lp_reader_test.cpp.o"
  "CMakeFiles/lp_reader_test.dir/lp_reader_test.cpp.o.d"
  "lp_reader_test"
  "lp_reader_test.pdb"
  "lp_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
