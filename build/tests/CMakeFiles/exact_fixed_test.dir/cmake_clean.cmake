file(REMOVE_RECURSE
  "CMakeFiles/exact_fixed_test.dir/exact_fixed_test.cpp.o"
  "CMakeFiles/exact_fixed_test.dir/exact_fixed_test.cpp.o.d"
  "exact_fixed_test"
  "exact_fixed_test.pdb"
  "exact_fixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
