# Empty dependencies file for exact_fixed_test.
# This may be replaced when dependencies are built.
