# Empty compiler generated dependencies file for profiled_ranges_test.
# This may be replaced when dependencies are built.
