file(REMOVE_RECURSE
  "CMakeFiles/profiled_ranges_test.dir/profiled_ranges_test.cpp.o"
  "CMakeFiles/profiled_ranges_test.dir/profiled_ranges_test.cpp.o.d"
  "profiled_ranges_test"
  "profiled_ranges_test.pdb"
  "profiled_ranges_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiled_ranges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
