# Empty dependencies file for iebw_test.
# This may be replaced when dependencies are built.
