file(REMOVE_RECURSE
  "CMakeFiles/iebw_test.dir/iebw_test.cpp.o"
  "CMakeFiles/iebw_test.dir/iebw_test.cpp.o.d"
  "iebw_test"
  "iebw_test.pdb"
  "iebw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iebw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
