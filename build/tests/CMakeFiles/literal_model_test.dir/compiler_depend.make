# Empty compiler generated dependencies file for literal_model_test.
# This may be replaced when dependencies are built.
