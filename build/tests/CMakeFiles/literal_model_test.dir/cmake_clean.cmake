file(REMOVE_RECURSE
  "CMakeFiles/literal_model_test.dir/literal_model_test.cpp.o"
  "CMakeFiles/literal_model_test.dir/literal_model_test.cpp.o.d"
  "literal_model_test"
  "literal_model_test.pdb"
  "literal_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literal_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
