file(REMOVE_RECURSE
  "CMakeFiles/assignment_io_test.dir/assignment_io_test.cpp.o"
  "CMakeFiles/assignment_io_test.dir/assignment_io_test.cpp.o.d"
  "assignment_io_test"
  "assignment_io_test.pdb"
  "assignment_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
