# Empty dependencies file for assignment_io_test.
# This may be replaced when dependencies are built.
