file(REMOVE_RECURSE
  "CMakeFiles/polybench_test.dir/polybench_test.cpp.o"
  "CMakeFiles/polybench_test.dir/polybench_test.cpp.o.d"
  "polybench_test"
  "polybench_test.pdb"
  "polybench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polybench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
