# Empty compiler generated dependencies file for soft_float_test.
# This may be replaced when dependencies are built.
