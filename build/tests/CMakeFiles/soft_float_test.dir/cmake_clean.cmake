file(REMOVE_RECURSE
  "CMakeFiles/soft_float_test.dir/soft_float_test.cpp.o"
  "CMakeFiles/soft_float_test.dir/soft_float_test.cpp.o.d"
  "soft_float_test"
  "soft_float_test.pdb"
  "soft_float_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_float_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
