# Empty compiler generated dependencies file for posit_explore.
# This may be replaced when dependencies are built.
