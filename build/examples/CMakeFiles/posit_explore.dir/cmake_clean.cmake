file(REMOVE_RECURSE
  "CMakeFiles/posit_explore.dir/posit_explore.cpp.o"
  "CMakeFiles/posit_explore.dir/posit_explore.cpp.o.d"
  "posit_explore"
  "posit_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posit_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
