# Empty compiler generated dependencies file for polybench_tune.
# This may be replaced when dependencies are built.
