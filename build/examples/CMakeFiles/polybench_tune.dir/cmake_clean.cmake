file(REMOVE_RECURSE
  "CMakeFiles/polybench_tune.dir/polybench_tune.cpp.o"
  "CMakeFiles/polybench_tune.dir/polybench_tune.cpp.o.d"
  "polybench_tune"
  "polybench_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polybench_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
