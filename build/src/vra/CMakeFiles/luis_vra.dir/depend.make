# Empty dependencies file for luis_vra.
# This may be replaced when dependencies are built.
