file(REMOVE_RECURSE
  "CMakeFiles/luis_vra.dir/interval.cpp.o"
  "CMakeFiles/luis_vra.dir/interval.cpp.o.d"
  "CMakeFiles/luis_vra.dir/range_analysis.cpp.o"
  "CMakeFiles/luis_vra.dir/range_analysis.cpp.o.d"
  "libluis_vra.a"
  "libluis_vra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_vra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
