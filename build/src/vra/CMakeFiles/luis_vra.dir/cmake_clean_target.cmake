file(REMOVE_RECURSE
  "libluis_vra.a"
)
