file(REMOVE_RECURSE
  "libluis_frontend.a"
)
