# Empty dependencies file for luis_frontend.
# This may be replaced when dependencies are built.
