file(REMOVE_RECURSE
  "CMakeFiles/luis_frontend.dir/lexer.cpp.o"
  "CMakeFiles/luis_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/luis_frontend.dir/parser.cpp.o"
  "CMakeFiles/luis_frontend.dir/parser.cpp.o.d"
  "libluis_frontend.a"
  "libluis_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
