file(REMOVE_RECURSE
  "libluis_numrep.a"
)
