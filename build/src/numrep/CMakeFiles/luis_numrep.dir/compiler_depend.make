# Empty compiler generated dependencies file for luis_numrep.
# This may be replaced when dependencies are built.
