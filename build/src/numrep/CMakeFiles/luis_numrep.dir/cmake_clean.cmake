file(REMOVE_RECURSE
  "CMakeFiles/luis_numrep.dir/fixed_point.cpp.o"
  "CMakeFiles/luis_numrep.dir/fixed_point.cpp.o.d"
  "CMakeFiles/luis_numrep.dir/formats.cpp.o"
  "CMakeFiles/luis_numrep.dir/formats.cpp.o.d"
  "CMakeFiles/luis_numrep.dir/iebw.cpp.o"
  "CMakeFiles/luis_numrep.dir/iebw.cpp.o.d"
  "CMakeFiles/luis_numrep.dir/posit.cpp.o"
  "CMakeFiles/luis_numrep.dir/posit.cpp.o.d"
  "CMakeFiles/luis_numrep.dir/quantize.cpp.o"
  "CMakeFiles/luis_numrep.dir/quantize.cpp.o.d"
  "CMakeFiles/luis_numrep.dir/soft_float.cpp.o"
  "CMakeFiles/luis_numrep.dir/soft_float.cpp.o.d"
  "libluis_numrep.a"
  "libluis_numrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_numrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
