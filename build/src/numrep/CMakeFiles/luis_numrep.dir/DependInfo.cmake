
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numrep/fixed_point.cpp" "src/numrep/CMakeFiles/luis_numrep.dir/fixed_point.cpp.o" "gcc" "src/numrep/CMakeFiles/luis_numrep.dir/fixed_point.cpp.o.d"
  "/root/repo/src/numrep/formats.cpp" "src/numrep/CMakeFiles/luis_numrep.dir/formats.cpp.o" "gcc" "src/numrep/CMakeFiles/luis_numrep.dir/formats.cpp.o.d"
  "/root/repo/src/numrep/iebw.cpp" "src/numrep/CMakeFiles/luis_numrep.dir/iebw.cpp.o" "gcc" "src/numrep/CMakeFiles/luis_numrep.dir/iebw.cpp.o.d"
  "/root/repo/src/numrep/posit.cpp" "src/numrep/CMakeFiles/luis_numrep.dir/posit.cpp.o" "gcc" "src/numrep/CMakeFiles/luis_numrep.dir/posit.cpp.o.d"
  "/root/repo/src/numrep/quantize.cpp" "src/numrep/CMakeFiles/luis_numrep.dir/quantize.cpp.o" "gcc" "src/numrep/CMakeFiles/luis_numrep.dir/quantize.cpp.o.d"
  "/root/repo/src/numrep/soft_float.cpp" "src/numrep/CMakeFiles/luis_numrep.dir/soft_float.cpp.o" "gcc" "src/numrep/CMakeFiles/luis_numrep.dir/soft_float.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/luis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
