# Empty compiler generated dependencies file for luis_core.
# This may be replaced when dependencies are built.
