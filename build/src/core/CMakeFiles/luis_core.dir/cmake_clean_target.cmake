file(REMOVE_RECURSE
  "libluis_core.a"
)
