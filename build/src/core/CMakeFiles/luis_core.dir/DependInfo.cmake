
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment_io.cpp" "src/core/CMakeFiles/luis_core.dir/assignment_io.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/assignment_io.cpp.o.d"
  "/root/repo/src/core/cast_materializer.cpp" "src/core/CMakeFiles/luis_core.dir/cast_materializer.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/cast_materializer.cpp.o.d"
  "/root/repo/src/core/error_model.cpp" "src/core/CMakeFiles/luis_core.dir/error_model.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/error_model.cpp.o.d"
  "/root/repo/src/core/greedy_allocator.cpp" "src/core/CMakeFiles/luis_core.dir/greedy_allocator.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/greedy_allocator.cpp.o.d"
  "/root/repo/src/core/ilp_allocator.cpp" "src/core/CMakeFiles/luis_core.dir/ilp_allocator.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/ilp_allocator.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/luis_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/profiled_ranges.cpp" "src/core/CMakeFiles/luis_core.dir/profiled_ranges.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/profiled_ranges.cpp.o.d"
  "/root/repo/src/core/type_classes.cpp" "src/core/CMakeFiles/luis_core.dir/type_classes.cpp.o" "gcc" "src/core/CMakeFiles/luis_core.dir/type_classes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ilp/CMakeFiles/luis_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/luis_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vra/CMakeFiles/luis_vra.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/luis_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/luis_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/numrep/CMakeFiles/luis_numrep.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/luis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
