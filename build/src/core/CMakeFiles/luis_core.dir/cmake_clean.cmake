file(REMOVE_RECURSE
  "CMakeFiles/luis_core.dir/assignment_io.cpp.o"
  "CMakeFiles/luis_core.dir/assignment_io.cpp.o.d"
  "CMakeFiles/luis_core.dir/cast_materializer.cpp.o"
  "CMakeFiles/luis_core.dir/cast_materializer.cpp.o.d"
  "CMakeFiles/luis_core.dir/error_model.cpp.o"
  "CMakeFiles/luis_core.dir/error_model.cpp.o.d"
  "CMakeFiles/luis_core.dir/greedy_allocator.cpp.o"
  "CMakeFiles/luis_core.dir/greedy_allocator.cpp.o.d"
  "CMakeFiles/luis_core.dir/ilp_allocator.cpp.o"
  "CMakeFiles/luis_core.dir/ilp_allocator.cpp.o.d"
  "CMakeFiles/luis_core.dir/pipeline.cpp.o"
  "CMakeFiles/luis_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/luis_core.dir/profiled_ranges.cpp.o"
  "CMakeFiles/luis_core.dir/profiled_ranges.cpp.o.d"
  "CMakeFiles/luis_core.dir/type_classes.cpp.o"
  "CMakeFiles/luis_core.dir/type_classes.cpp.o.d"
  "libluis_core.a"
  "libluis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
