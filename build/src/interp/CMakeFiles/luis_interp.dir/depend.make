# Empty dependencies file for luis_interp.
# This may be replaced when dependencies are built.
