file(REMOVE_RECURSE
  "libluis_interp.a"
)
