file(REMOVE_RECURSE
  "CMakeFiles/luis_interp.dir/interpreter.cpp.o"
  "CMakeFiles/luis_interp.dir/interpreter.cpp.o.d"
  "libluis_interp.a"
  "libluis_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
