
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cost_model.cpp" "src/platform/CMakeFiles/luis_platform.dir/cost_model.cpp.o" "gcc" "src/platform/CMakeFiles/luis_platform.dir/cost_model.cpp.o.d"
  "/root/repo/src/platform/energy.cpp" "src/platform/CMakeFiles/luis_platform.dir/energy.cpp.o" "gcc" "src/platform/CMakeFiles/luis_platform.dir/energy.cpp.o.d"
  "/root/repo/src/platform/microbench.cpp" "src/platform/CMakeFiles/luis_platform.dir/microbench.cpp.o" "gcc" "src/platform/CMakeFiles/luis_platform.dir/microbench.cpp.o.d"
  "/root/repo/src/platform/optime.cpp" "src/platform/CMakeFiles/luis_platform.dir/optime.cpp.o" "gcc" "src/platform/CMakeFiles/luis_platform.dir/optime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/luis_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/luis_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/luis_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/numrep/CMakeFiles/luis_numrep.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
