file(REMOVE_RECURSE
  "CMakeFiles/luis_platform.dir/cost_model.cpp.o"
  "CMakeFiles/luis_platform.dir/cost_model.cpp.o.d"
  "CMakeFiles/luis_platform.dir/energy.cpp.o"
  "CMakeFiles/luis_platform.dir/energy.cpp.o.d"
  "CMakeFiles/luis_platform.dir/microbench.cpp.o"
  "CMakeFiles/luis_platform.dir/microbench.cpp.o.d"
  "CMakeFiles/luis_platform.dir/optime.cpp.o"
  "CMakeFiles/luis_platform.dir/optime.cpp.o.d"
  "libluis_platform.a"
  "libluis_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
