# Empty dependencies file for luis_platform.
# This may be replaced when dependencies are built.
