file(REMOVE_RECURSE
  "libluis_platform.a"
)
