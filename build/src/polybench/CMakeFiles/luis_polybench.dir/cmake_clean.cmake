file(REMOVE_RECURSE
  "CMakeFiles/luis_polybench.dir/kernels_blas.cpp.o"
  "CMakeFiles/luis_polybench.dir/kernels_blas.cpp.o.d"
  "CMakeFiles/luis_polybench.dir/kernels_medley.cpp.o"
  "CMakeFiles/luis_polybench.dir/kernels_medley.cpp.o.d"
  "CMakeFiles/luis_polybench.dir/kernels_solvers.cpp.o"
  "CMakeFiles/luis_polybench.dir/kernels_solvers.cpp.o.d"
  "CMakeFiles/luis_polybench.dir/kernels_stencils.cpp.o"
  "CMakeFiles/luis_polybench.dir/kernels_stencils.cpp.o.d"
  "CMakeFiles/luis_polybench.dir/polybench.cpp.o"
  "CMakeFiles/luis_polybench.dir/polybench.cpp.o.d"
  "libluis_polybench.a"
  "libluis_polybench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_polybench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
