# Empty dependencies file for luis_polybench.
# This may be replaced when dependencies are built.
