file(REMOVE_RECURSE
  "libluis_polybench.a"
)
