
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/polybench/kernels_blas.cpp" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_blas.cpp.o" "gcc" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_blas.cpp.o.d"
  "/root/repo/src/polybench/kernels_medley.cpp" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_medley.cpp.o" "gcc" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_medley.cpp.o.d"
  "/root/repo/src/polybench/kernels_solvers.cpp" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_solvers.cpp.o" "gcc" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_solvers.cpp.o.d"
  "/root/repo/src/polybench/kernels_stencils.cpp" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_stencils.cpp.o" "gcc" "src/polybench/CMakeFiles/luis_polybench.dir/kernels_stencils.cpp.o.d"
  "/root/repo/src/polybench/polybench.cpp" "src/polybench/CMakeFiles/luis_polybench.dir/polybench.cpp.o" "gcc" "src/polybench/CMakeFiles/luis_polybench.dir/polybench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/luis_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/luis_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/luis_support.dir/DependInfo.cmake"
  "/root/repo/build/src/numrep/CMakeFiles/luis_numrep.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
