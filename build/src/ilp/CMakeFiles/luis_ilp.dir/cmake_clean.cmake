file(REMOVE_RECURSE
  "CMakeFiles/luis_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/luis_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/luis_ilp.dir/lp_reader.cpp.o"
  "CMakeFiles/luis_ilp.dir/lp_reader.cpp.o.d"
  "CMakeFiles/luis_ilp.dir/lp_writer.cpp.o"
  "CMakeFiles/luis_ilp.dir/lp_writer.cpp.o.d"
  "CMakeFiles/luis_ilp.dir/model.cpp.o"
  "CMakeFiles/luis_ilp.dir/model.cpp.o.d"
  "CMakeFiles/luis_ilp.dir/presolve.cpp.o"
  "CMakeFiles/luis_ilp.dir/presolve.cpp.o.d"
  "CMakeFiles/luis_ilp.dir/simplex.cpp.o"
  "CMakeFiles/luis_ilp.dir/simplex.cpp.o.d"
  "libluis_ilp.a"
  "libluis_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
