file(REMOVE_RECURSE
  "libluis_ilp.a"
)
