# Empty compiler generated dependencies file for luis_ilp.
# This may be replaced when dependencies are built.
