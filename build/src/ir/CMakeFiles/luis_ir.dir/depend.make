# Empty dependencies file for luis_ir.
# This may be replaced when dependencies are built.
