
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/luis_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/luis_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/kernel_builder.cpp" "src/ir/CMakeFiles/luis_ir.dir/kernel_builder.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/kernel_builder.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/ir/CMakeFiles/luis_ir.dir/parser.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/parser.cpp.o.d"
  "/root/repo/src/ir/passes.cpp" "src/ir/CMakeFiles/luis_ir.dir/passes.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/passes.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/luis_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/ir/CMakeFiles/luis_ir.dir/verifier.cpp.o" "gcc" "src/ir/CMakeFiles/luis_ir.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/luis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
