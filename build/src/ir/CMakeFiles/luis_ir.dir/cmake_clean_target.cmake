file(REMOVE_RECURSE
  "libluis_ir.a"
)
