file(REMOVE_RECURSE
  "CMakeFiles/luis_ir.dir/builder.cpp.o"
  "CMakeFiles/luis_ir.dir/builder.cpp.o.d"
  "CMakeFiles/luis_ir.dir/ir.cpp.o"
  "CMakeFiles/luis_ir.dir/ir.cpp.o.d"
  "CMakeFiles/luis_ir.dir/kernel_builder.cpp.o"
  "CMakeFiles/luis_ir.dir/kernel_builder.cpp.o.d"
  "CMakeFiles/luis_ir.dir/parser.cpp.o"
  "CMakeFiles/luis_ir.dir/parser.cpp.o.d"
  "CMakeFiles/luis_ir.dir/passes.cpp.o"
  "CMakeFiles/luis_ir.dir/passes.cpp.o.d"
  "CMakeFiles/luis_ir.dir/printer.cpp.o"
  "CMakeFiles/luis_ir.dir/printer.cpp.o.d"
  "CMakeFiles/luis_ir.dir/verifier.cpp.o"
  "CMakeFiles/luis_ir.dir/verifier.cpp.o.d"
  "libluis_ir.a"
  "libluis_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
