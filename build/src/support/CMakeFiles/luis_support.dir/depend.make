# Empty dependencies file for luis_support.
# This may be replaced when dependencies are built.
