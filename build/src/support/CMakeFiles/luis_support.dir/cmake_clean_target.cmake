file(REMOVE_RECURSE
  "libluis_support.a"
)
