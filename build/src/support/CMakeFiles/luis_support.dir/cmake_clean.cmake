file(REMOVE_RECURSE
  "CMakeFiles/luis_support.dir/diag.cpp.o"
  "CMakeFiles/luis_support.dir/diag.cpp.o.d"
  "CMakeFiles/luis_support.dir/rng.cpp.o"
  "CMakeFiles/luis_support.dir/rng.cpp.o.d"
  "CMakeFiles/luis_support.dir/statistics.cpp.o"
  "CMakeFiles/luis_support.dir/statistics.cpp.o.d"
  "CMakeFiles/luis_support.dir/string_utils.cpp.o"
  "CMakeFiles/luis_support.dir/string_utils.cpp.o.d"
  "libluis_support.a"
  "libluis_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
