file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_iebw.dir/bench_table1_iebw.cpp.o"
  "CMakeFiles/bench_table1_iebw.dir/bench_table1_iebw.cpp.o.d"
  "bench_table1_iebw"
  "bench_table1_iebw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_iebw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
