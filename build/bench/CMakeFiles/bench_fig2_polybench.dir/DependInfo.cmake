
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_polybench.cpp" "bench/CMakeFiles/bench_fig2_polybench.dir/bench_fig2_polybench.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_polybench.dir/bench_fig2_polybench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/luis_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/luis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/luis_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/vra/CMakeFiles/luis_vra.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/luis_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/polybench/CMakeFiles/luis_polybench.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/luis_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/luis_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/numrep/CMakeFiles/luis_numrep.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/luis_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
