file(REMOVE_RECURSE
  "CMakeFiles/bench_dataset_size.dir/bench_dataset_size.cpp.o"
  "CMakeFiles/bench_dataset_size.dir/bench_dataset_size.cpp.o.d"
  "bench_dataset_size"
  "bench_dataset_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
