# Empty compiler generated dependencies file for bench_dataset_size.
# This may be replaced when dependencies are built.
