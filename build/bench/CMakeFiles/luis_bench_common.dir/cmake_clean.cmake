file(REMOVE_RECURSE
  "CMakeFiles/luis_bench_common.dir/experiment.cpp.o"
  "CMakeFiles/luis_bench_common.dir/experiment.cpp.o.d"
  "libluis_bench_common.a"
  "libluis_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
