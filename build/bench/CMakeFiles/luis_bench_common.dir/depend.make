# Empty dependencies file for luis_bench_common.
# This may be replaced when dependencies are built.
