file(REMOVE_RECURSE
  "libluis_bench_common.a"
)
