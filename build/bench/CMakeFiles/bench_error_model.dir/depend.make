# Empty dependencies file for bench_error_model.
# This may be replaced when dependencies are built.
