file(REMOVE_RECURSE
  "CMakeFiles/bench_error_model.dir/bench_error_model.cpp.o"
  "CMakeFiles/bench_error_model.dir/bench_error_model.cpp.o.d"
  "bench_error_model"
  "bench_error_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
