# Empty dependencies file for luis.
# This may be replaced when dependencies are built.
