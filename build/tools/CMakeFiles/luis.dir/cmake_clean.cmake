file(REMOVE_RECURSE
  "CMakeFiles/luis.dir/luis_cli.cpp.o"
  "CMakeFiles/luis.dir/luis_cli.cpp.o.d"
  "luis"
  "luis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/luis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
