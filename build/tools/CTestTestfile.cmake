# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_kernels "/root/repo/build/tools/luis" "kernels")
set_tests_properties(cli_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit_verify "sh" "-c" "/root/repo/build/tools/luis emit atax -o atax_cli.ir && /root/repo/build/tools/luis verify atax_cli.ir")
set_tests_properties(cli_emit_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tune "sh" "-c" "/root/repo/build/tools/luis emit trisolv -o trisolv_cli.ir && /root/repo/build/tools/luis tune trisolv_cli.ir --platform AMD --config Fast --optimize -o trisolv_tuned.ir && /root/repo/build/tools/luis verify trisolv_tuned.ir")
set_tests_properties(cli_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "sh" "-c" "/root/repo/build/tools/luis emit jacobi-1d -o j1d_cli.ir && /root/repo/build/tools/luis run j1d_cli.ir --type binary32")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ranges "sh" "-c" "/root/repo/build/tools/luis emit bicg -o bicg_cli.ir && /root/repo/build/tools/luis ranges bicg_cli.ir")
set_tests_properties(cli_ranges PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/luis" "bogus-subcommand")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compile "sh" "-c" "/root/repo/build/tools/luis compile /root/repo/examples/kernels/blur3.lk -o blur3_cli.ir && /root/repo/build/tools/luis tune blur3_cli.ir --platform Raspberry --config Fast")
set_tests_properties(cli_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_platform_file "sh" "-c" "/root/repo/build/tools/luis characterize -o host_cli.optime && /root/repo/build/tools/luis emit mvt -o mvt_cli.ir && /root/repo/build/tools/luis tune mvt_cli.ir --platform-file host_cli.optime --config Fast")
set_tests_properties(cli_platform_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_assignment_roundtrip "sh" "-c" "/root/repo/build/tools/luis emit gesummv -o gsv_cli.ir && /root/repo/build/tools/luis tune gsv_cli.ir --platform Stm32 --config Fast --save-assignment gsv_types.txt && /root/repo/build/tools/luis apply gsv_cli.ir gsv_types.txt")
set_tests_properties(cli_assignment_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
