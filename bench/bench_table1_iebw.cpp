// Regenerates Table I of the paper — the (p, E) parameters of the common
// IEEE-754 formats — and demonstrates the IEBW metric across all supported
// representation systems at several value scales.
#include <cstdio>

#include "numrep/iebw.hpp"
#include "numrep/soft_float.hpp"
#include "support/string_utils.hpp"

using namespace luis;
using namespace luis::numrep;

int main() {
  std::printf("=== Table I: precision (p) and maximum exponent (E) of the "
              "IEEE-754 formats ===\n\n");
  std::printf("%-32s %5s %8s\n", "Format", "p", "E");
  const NumericFormat floats[] = {kBinary16,  kBinary32, kBinary64,
                                  kBinary128, kBinary256, kBfloat16};
  for (const NumericFormat& f : floats)
    std::printf("%-32s %5d %8d\n", f.name().c_str(), f.precision(),
                f.max_exponent());

  std::printf("\n=== IEBW of representative variables (Definition 2, "
              "guaranteed precision over the range) ===\n\n");
  struct Range {
    const char* label;
    double lo, hi;
  };
  const Range ranges[] = {
      {"[0, 1]", 0.0, 1.0},       {"[-4, 4]", -4.0, 4.0},
      {"[0, 100]", 0.0, 100.0},   {"[-1e4, 1e4]", -1e4, 1e4},
      {"[0, 1e6]", 0.0, 1e6},     {"[-1e-3, 1e-3]", -1e-3, 1e-3},
  };
  std::printf("%-14s %9s %9s %9s %9s %9s %9s\n", "Range", "fix32", "binary16",
              "bfloat16", "binary32", "binary64", "posit32");
  for (const Range& r : ranges) {
    const int fix_f = fixed_point_max_frac(32, true, r.lo, r.hi);
    std::printf("%-14s %9d %9d %9d %9d %9d %9d\n", r.label,
                fix_f >= 0 ? iebw_of_range(kFixed32, r.lo, r.hi, fix_f) : -999,
                iebw_of_range(kBinary16, r.lo, r.hi),
                iebw_of_range(kBfloat16, r.lo, r.hi),
                iebw_of_range(kBinary32, r.lo, r.hi),
                iebw_of_range(kBinary64, r.lo, r.hi),
                iebw_of_range(kPosit32, r.lo, r.hi));
  }
  std::printf("\n(fix32 shown at its fix-max fractional bits; -999 marks an "
              "infeasible fixed range.)\n");
  std::printf("\nPointwise IEBW (Definition 1/3/4/5) of binary32 vs posit32_2 "
              "across magnitudes —\nposit tapering vs float uniformity:\n\n");
  std::printf("%12s %10s %10s\n", "x", "binary32", "posit32_2");
  for (double x : {1e-6, 1e-3, 0.1, 1.0, 16.0, 1024.0, 1e6}) {
    std::printf("%12g %10d %10d\n", x, iebw_float(kBinary32, x),
                iebw_posit(kPosit32, x));
  }
  return 0;
}
