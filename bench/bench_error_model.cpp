// Static error model vs measured error.
//
// For every PolyBench kernel tuned with the Fast preset on Stm32, compares
// the static worst-case absolute error bound (core/error_model.hpp)
// against the measured worst absolute output deviation of the tuned
// execution. A sound analysis keeps measured <= predicted on every kernel
// whose accumulation depth fits the pass budget; the "slack" column shows
// how conservative the first-order bound is (unbounded rows are the
// division/recursion kernels the analysis honestly gives up on).
#include <cmath>
#include <cstdio>

#include "core/error_model.hpp"
#include "core/pipeline.hpp"
#include "polybench/polybench.hpp"

using namespace luis;

int main() {
  std::printf("=== Static error bound vs measured error (Fast preset, Stm32) "
              "===\n\n");
  std::printf("%-16s %-10s %12s %12s %10s\n", "kernel", "output", "predicted",
              "measured", "slack");
  int sound = 0, total = 0, unbounded = 0;
  for (const std::string& name : polybench::kernel_names()) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
    const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
    const core::AllocationResult alloc =
        core::allocate_ilp(*kernel.function, ranges, platform::stm32_table(),
                           core::TuningConfig::fast());

    core::ErrorAnalysisOptions opt;
    const core::ErrorAnalysis ea =
        core::analyze_errors(*kernel.function, alloc.assignment, ranges, opt);

    interp::ArrayStore ref = kernel.inputs;
    interp::TypeAssignment binary64;
    if (!run_function(*kernel.function, binary64, ref).ok) continue;
    interp::ArrayStore tuned = kernel.inputs;
    if (!run_function(*kernel.function, alloc.assignment, tuned).ok) continue;

    for (const std::string& out : kernel.outputs) {
      double measured = 0.0;
      for (std::size_t i = 0; i < ref.at(out).size(); ++i)
        measured =
            std::max(measured, std::abs(ref.at(out)[i] - tuned.at(out)[i]));
      const double predicted = ea.array_bound.at(out);
      ++total;
      const bool is_unbounded = predicted >= opt.infinity_threshold;
      unbounded += is_unbounded;
      if (measured <= predicted * (1 + 1e-9)) ++sound;
      if (is_unbounded)
        std::printf("%-16s %-10s %12s %12.3e %10s\n", name.c_str(),
                    out.c_str(), "unbounded", measured, "-");
      else
        std::printf("%-16s %-10s %12.3e %12.3e %9.1fx\n", name.c_str(),
                    out.c_str(), predicted, measured,
                    measured > 0 ? predicted / measured : INFINITY);
    }
  }
  std::printf("\nsound on %d/%d outputs (%d reported unbounded: division or "
              "recursion over zero-straddling ranges)\n",
              sound, total, unbounded);
  return 0;
}
