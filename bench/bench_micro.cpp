// Google-benchmark microbenchmarks of the library's hot paths: software
// arithmetic (soft-float, fixed point, posit), the simplex/B&B solver, the
// IR interpreter, and the end-to-end tuning pipeline.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "ilp/branch_and_bound.hpp"
#include <cmath>

#include "numrep/fixed_point.hpp"
#include "numrep/fixed_posit.hpp"
#include "numrep/posit.hpp"
#include "numrep/soft_float.hpp"
#include "platform/optime.hpp"
#include "polybench/polybench.hpp"
#include "support/rng.hpp"

using namespace luis;
using namespace luis::numrep;

namespace {

void BM_SoftFloatRound(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.next_double(-1e6, 1e6);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_to_format(kBinary32, xs[i++ & 1023]));
  }
}
BENCHMARK(BM_SoftFloatRound);

void BM_FixedQuantize(benchmark::State& state) {
  Rng rng(2);
  const FixedSpec spec{32, 16, true};
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.next_double(-1e3, 1e3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_fixed(spec, xs[i++ & 1023]));
  }
}
BENCHMARK(BM_FixedQuantize);

void BM_PositRoundTrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.next_double(-100, 100);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_posit(kPosit32, xs[i++ & 1023]));
  }
}
BENCHMARK(BM_PositRoundTrip);

// --- Software-emulation op-time pass ------------------------------------
//
// Measures what one arithmetic op costs in a software-emulated format the
// way the VM actually executes it — a double op followed by a quantize
// into the format — against the native float op it displaces. Operands
// are pre-quantized into the format, as they are in the register file.
// The time ratios (emulated / native float) from this pass are recorded
// as the explicit fp8/fposit rows in src/platform/optime.cpp; re-run with
//
//   bench_micro --benchmark_filter=SoftEmu
//
// when re-characterizing a host, and update the provenance comment there.

/// 1024 operand pairs drawn from (lo, hi), quantized by `quant`.
template <typename Quant>
std::vector<std::pair<double, double>> emu_operands(unsigned seed, double lo,
                                                    double hi, Quant quant) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> xs(1024);
  for (auto& [a, b] : xs) {
    a = quant(rng.next_double(lo, hi));
    b = quant(rng.next_double(lo, hi));
    if (b == 0.0) b = quant(1.0);
  }
  return xs;
}

template <typename Op>
void BM_SoftEmuFloat(benchmark::State& state, Op op) {
  const auto xs = emu_operands(11, -100, 100, [](double x) {
    return static_cast<double>(static_cast<float>(x));
  });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = xs[i++ & 1023];
    benchmark::DoNotOptimize(static_cast<float>(
        op(static_cast<float>(a), static_cast<float>(b))));
  }
}

template <typename Op>
void BM_SoftEmuFp8(benchmark::State& state, Op op) {
  const auto xs = emu_operands(12, -100, 100, [](double x) {
    return round_to_format(kFp8E4M3, x);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = xs[i++ & 1023];
    benchmark::DoNotOptimize(round_to_format(kFp8E4M3, op(a, b)));
  }
}

template <typename Op>
void BM_SoftEmuFposit(benchmark::State& state, Op op) {
  const auto xs = emu_operands(13, -100, 100, [](double x) {
    return quantize_fixed_posit(kFixedPosit16, x);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = xs[i++ & 1023];
    benchmark::DoNotOptimize(quantize_fixed_posit(kFixedPosit16, op(a, b)));
  }
}

const auto kEmuAdd = [](auto a, auto b) { return a + b; };
const auto kEmuMul = [](auto a, auto b) { return a * b; };
const auto kEmuDiv = [](auto a, auto b) { return a / b; };
const auto kEmuRem = [](auto a, auto b) {
  return std::fmod(static_cast<double>(a), static_cast<double>(b));
};

BENCHMARK_CAPTURE(BM_SoftEmuFloat, add, kEmuAdd);
BENCHMARK_CAPTURE(BM_SoftEmuFloat, mul, kEmuMul);
BENCHMARK_CAPTURE(BM_SoftEmuFloat, div, kEmuDiv);
BENCHMARK_CAPTURE(BM_SoftEmuFloat, rem, kEmuRem);
BENCHMARK_CAPTURE(BM_SoftEmuFp8, add, kEmuAdd);
BENCHMARK_CAPTURE(BM_SoftEmuFp8, mul, kEmuMul);
BENCHMARK_CAPTURE(BM_SoftEmuFp8, div, kEmuDiv);
BENCHMARK_CAPTURE(BM_SoftEmuFp8, rem, kEmuRem);
BENCHMARK_CAPTURE(BM_SoftEmuFposit, add, kEmuAdd);
BENCHMARK_CAPTURE(BM_SoftEmuFposit, mul, kEmuMul);
BENCHMARK_CAPTURE(BM_SoftEmuFposit, div, kEmuDiv);
BENCHMARK_CAPTURE(BM_SoftEmuFposit, rem, kEmuRem);

void BM_SimplexKnapsackLp(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(4);
  ilp::Model m;
  ilp::LinearExpr wsum, vsum;
  for (int i = 0; i < n; ++i) {
    const ilp::VarId x = m.add_continuous("x" + std::to_string(i), 0.0, 1.0);
    wsum.add(x, static_cast<double>(rng.next_int(1, 20)));
    vsum.add(x, static_cast<double>(rng.next_int(1, 30)));
  }
  m.add_le(std::move(wsum), 5.0 * n);
  m.set_objective(ilp::Direction::Maximize, std::move(vsum));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexKnapsackLp)->Arg(16)->Arg(64)->Arg(256);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(5);
  ilp::Model m;
  ilp::LinearExpr wsum, vsum;
  for (int i = 0; i < n; ++i) {
    const ilp::VarId x = m.add_binary("x" + std::to_string(i));
    wsum.add(x, static_cast<double>(rng.next_int(1, 20)));
    vsum.add(x, static_cast<double>(rng.next_int(1, 30)));
  }
  m.add_le(std::move(wsum), 5.0 * n);
  m.set_objective(ilp::Direction::Maximize, std::move(vsum));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_milp(m));
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(12)->Arg(24);

void BM_InterpreterGemm(benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", module);
  const interp::TypeAssignment binary64;
  for (auto _ : state) {
    interp::ArrayStore store = kernel.inputs;
    benchmark::DoNotOptimize(
        run_function(*kernel.function, binary64, store));
  }
}
BENCHMARK(BM_InterpreterGemm);

void BM_IlpAllocatorGemm(benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", module);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::allocate_ilp(*kernel.function, ranges,
                                                platform::stm32_table(),
                                                core::TuningConfig::balanced()));
  }
}
BENCHMARK(BM_IlpAllocatorGemm);

void BM_FullPipeline(benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("atax", module);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::tune_kernel(*kernel.function,
                                               platform::intel_table(),
                                               core::TuningConfig::fast()));
  }
}
BENCHMARK(BM_FullPipeline);

} // namespace

BENCHMARK_MAIN();
