// Google-benchmark microbenchmarks of the library's hot paths: software
// arithmetic (soft-float, fixed point, posit), the simplex/B&B solver, the
// IR interpreter, and the end-to-end tuning pipeline.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "ilp/branch_and_bound.hpp"
#include "numrep/fixed_point.hpp"
#include "numrep/posit.hpp"
#include "numrep/soft_float.hpp"
#include "platform/optime.hpp"
#include "polybench/polybench.hpp"
#include "support/rng.hpp"

using namespace luis;
using namespace luis::numrep;

namespace {

void BM_SoftFloatRound(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.next_double(-1e6, 1e6);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_to_format(kBinary32, xs[i++ & 1023]));
  }
}
BENCHMARK(BM_SoftFloatRound);

void BM_FixedQuantize(benchmark::State& state) {
  Rng rng(2);
  const FixedSpec spec{32, 16, true};
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.next_double(-1e3, 1e3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_fixed(spec, xs[i++ & 1023]));
  }
}
BENCHMARK(BM_FixedQuantize);

void BM_PositRoundTrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.next_double(-100, 100);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_posit(kPosit32, xs[i++ & 1023]));
  }
}
BENCHMARK(BM_PositRoundTrip);

void BM_SimplexKnapsackLp(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(4);
  ilp::Model m;
  ilp::LinearExpr wsum, vsum;
  for (int i = 0; i < n; ++i) {
    const ilp::VarId x = m.add_continuous("x" + std::to_string(i), 0.0, 1.0);
    wsum.add(x, static_cast<double>(rng.next_int(1, 20)));
    vsum.add(x, static_cast<double>(rng.next_int(1, 30)));
  }
  m.add_le(std::move(wsum), 5.0 * n);
  m.set_objective(ilp::Direction::Maximize, std::move(vsum));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexKnapsackLp)->Arg(16)->Arg(64)->Arg(256);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(5);
  ilp::Model m;
  ilp::LinearExpr wsum, vsum;
  for (int i = 0; i < n; ++i) {
    const ilp::VarId x = m.add_binary("x" + std::to_string(i));
    wsum.add(x, static_cast<double>(rng.next_int(1, 20)));
    vsum.add(x, static_cast<double>(rng.next_int(1, 30)));
  }
  m.add_le(std::move(wsum), 5.0 * n);
  m.set_objective(ilp::Direction::Maximize, std::move(vsum));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_milp(m));
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(12)->Arg(24);

void BM_InterpreterGemm(benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", module);
  const interp::TypeAssignment binary64;
  for (auto _ : state) {
    interp::ArrayStore store = kernel.inputs;
    benchmark::DoNotOptimize(
        run_function(*kernel.function, binary64, store));
  }
}
BENCHMARK(BM_InterpreterGemm);

void BM_IlpAllocatorGemm(benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", module);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::allocate_ilp(*kernel.function, ranges,
                                                platform::stm32_table(),
                                                core::TuningConfig::balanced()));
  }
}
BENCHMARK(BM_IlpAllocatorGemm);

void BM_FullPipeline(benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("atax", module);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::tune_kernel(*kernel.function,
                                               platform::intel_table(),
                                               core::TuningConfig::fast()));
  }
}
BENCHMARK(BM_FullPipeline);

} // namespace

BENCHMARK_MAIN();
