// Regenerates Table II of the paper: the op-time(o, t) platform
// characterization. Prints the four canned tables (the paper's measured
// values for Stm32 / Raspberry / Intel / AMD) and then runs the live
// micro-benchmark procedure of Section IV-C on the host machine.
#include <cstdio>

#include <vector>

#include "platform/microbench.hpp"
#include "platform/optime.hpp"

using namespace luis::platform;

namespace {

void print_tables(const std::vector<const OpTimeTable*>& tables) {
  std::printf("%-12s %-8s", "o", "t");
  for (const OpTimeTable* t : tables) std::printf(" %10s", t->machine().c_str());
  std::printf("\n");
  // Use the canonical row order of Table II.
  const std::pair<const char*, const char*> rows[] = {
      {"add", "fix"},        {"add", "float"},        {"add", "double"},
      {"sub", "fix"},        {"sub", "float"},        {"sub", "double"},
      {"mul", "fix"},        {"mul", "float"},        {"mul", "double"},
      {"div", "fix"},        {"div", "float"},        {"div", "double"},
      {"rem", "fix"},        {"rem", "float"},        {"rem", "double"},
      {"cast_fix", "fix"},   {"cast_fix", "float"},   {"cast_fix", "double"},
      {"cast_float", "fix"}, {"cast_float", "double"},
      {"cast_double", "fix"}, {"cast_double", "float"},
  };
  for (const auto& [op, type] : rows) {
    std::printf("%-12s %-8s", op, type);
    for (const OpTimeTable* t : tables)
      std::printf(" %10.2f", t->op_time(op, type));
    std::printf("\n");
  }
}

} // namespace

int main() {
  std::printf("=== Table II: hardware characterization on elementary LLVM "
              "mathematical operations ===\n");
  std::printf("(canned tables: the paper's measured values, normalized to the "
              "fastest op per machine)\n\n");
  print_tables({&stm32_table(), &raspberry_table(), &intel_table(), &amd_table()});

  std::printf("\n=== Live host characterization (the paper's measurement "
              "procedure: 128-iteration\nblocks timed with "
              "clock_gettime(CLOCK_PROCESS_CPUTIME_ID), normalized) ===\n\n");
  MicrobenchOptions opt;
  const OpTimeTable host = run_microbenchmark(opt);
  print_tables({&host});

  std::printf("\nDerived fallback entries used by the cost model (sqrt = 2x "
              "div, exp/pow = rem,\nneg/abs/min/max = add; posit arithmetic = "
              "float x %.0f software factor):\n\n",
              kPositSoftwareFactor);
  std::printf("%-12s %-8s %10s\n", "op", "type", "host");
  for (const char* op : {"sqrt", "exp", "min"})
    std::printf("%-12s %-8s %10.2f\n", op, "double", host.op_time(op, "double"));
  std::printf("%-12s %-8s %10.2f\n", "add", "posit", host.op_time("add", "posit"));
  return 0;
}
