// Ablations of the design choices documented in DESIGN.md §4b:
//
//  A. err_zero_floor — where the Err term evaluates the literal
//     Definition 2 on zero-straddling ranges controls the Balanced
//     preset's knife edge (Table V sensitivity).
//  B. candidate type set — adding the extension formats (binary16,
//     bfloat16, posits) to T and letting the ILP choose.
//  C. non-real operation cost — how pricing the index/memory/branch
//     overhead dampens speedup ratios.
//
// (The merged-vs-literal model ablation lives in bench_compile_overhead.)
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "core/profiled_ranges.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

namespace {

struct MixSummary {
  double fix = 0, f32 = 0, f64 = 0, other = 0;
};

MixSummary balanced_mix_for_floor(double floor_value) {
  MixSummary mix;
  int kernels = 0;
  for (const std::string& name : polybench::kernel_names()) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
    core::TuningConfig config = core::TuningConfig::balanced();
    config.err_zero_floor = floor_value;
    const core::PipelineResult tuned =
        core::tune_kernel(*kernel.function, platform::stm32_table(), config);
    double total = 0;
    for (const auto& [cls, count] : tuned.allocation.stats.instruction_mix)
      total += count;
    if (total == 0) continue;
    ++kernels;
    for (const auto& [cls, count] : tuned.allocation.stats.instruction_mix) {
      const double share = count / total;
      if (cls == "fix")
        mix.fix += share;
      else if (cls == "float")
        mix.f32 += share;
      else if (cls == "double")
        mix.f64 += share;
      else
        mix.other += share;
    }
  }
  mix.fix *= 100.0 / kernels;
  mix.f32 *= 100.0 / kernels;
  mix.f64 *= 100.0 / kernels;
  mix.other *= 100.0 / kernels;
  return mix;
}

} // namespace

int main() {
  std::printf("=== Ablation A: err_zero_floor vs Balanced instruction mix "
              "(Stm32) ===\n\n");
  std::printf("%-12s %10s %10s %10s\n", "floor", "fix%", "b32%", "b64%");
  for (double floor_value : {0.0, 0x1.0p-30, 0x1.0p-20, 0x1.0p-12, 0x1.0p-4}) {
    const MixSummary mix = balanced_mix_for_floor(floor_value);
    std::printf("%-12g %10.1f %10.1f %10.1f\n", floor_value, mix.fix, mix.f32,
                mix.f64);
  }
  std::printf("(paper's Table V Balanced row: 1.5 / 20.8 / 77.6 — the 2^-20 "
              "default)\n");

  std::printf("\n=== Ablation B: candidate type set (Fast preset, Stm32) "
              "===\n\n");
  struct TypeSet {
    const char* label;
    std::vector<numrep::NumericFormat> types;
  };
  const TypeSet sets[] = {
      {"paper {fix32,b32,b64}",
       {numrep::kFixed32, numrep::kBinary32, numrep::kBinary64}},
      {"+half/bfloat16",
       {numrep::kFixed32, numrep::kBinary16, numrep::kBfloat16,
        numrep::kBinary32, numrep::kBinary64}},
      {"+posit16/posit32",
       {numrep::kFixed32, numrep::kBinary32, numrep::kBinary64,
        numrep::kPosit16, numrep::kPosit32}},
      {"fixed widths {fix16,fix32,fix64}",
       {numrep::kFixed16, numrep::kFixed32, numrep::kFixed64,
        numrep::kBinary64}},
  };
  std::printf("%-34s %12s %14s\n", "type set", "mean speedup", "worst MPE");
  for (const TypeSet& set : sets) {
    RunningStats speedups;
    double worst_mpe = 0.0;
    for (const std::string& name : polybench::kernel_names()) {
      ir::Module m;
      polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
      interp::ArrayStore ref = kernel.inputs;
      interp::TypeAssignment binary64;
      const interp::RunResult base =
          run_function(*kernel.function, binary64, ref);
      if (!base.ok) continue;

      core::TuningConfig config = core::TuningConfig::fast();
      config.types = set.types;
      const core::PipelineResult tuned =
          core::tune_kernel(*kernel.function, platform::stm32_table(), config);
      interp::ArrayStore out = kernel.inputs;
      const interp::RunResult run =
          run_function(*kernel.function, tuned.allocation.assignment, out);
      if (!run.ok) continue;
      speedups.add(platform::speedup_percent(
          platform::simulated_time(base.counters, platform::stm32_table()),
          platform::simulated_time(run.counters, platform::stm32_table())));
      if (name == "gramschmidt" || name == "fdtd-2d") continue; // metric blow-ups
      for (const std::string& o : kernel.outputs) {
        const double mpe = mean_percentage_error(ref.at(o), out.at(o));
        if (std::isfinite(mpe)) worst_mpe = std::max(worst_mpe, mpe);
      }
    }
    std::printf("%-34s %11.1f%% %13.3g%%\n", set.label, speedups.mean(),
                worst_mpe);
  }

  std::printf("\n=== Ablation C: non-real op cost vs Fast speedup (Stm32) "
              "===\n\n");
  std::printf("%-12s %14s\n", "cost", "mean speedup");
  for (double cost : {0.0, 0.25, 0.5, 1.0}) {
    RunningStats speedups;
    for (const std::string& name : polybench::kernel_names()) {
      ir::Module m;
      polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
      interp::ArrayStore ref = kernel.inputs;
      interp::TypeAssignment binary64;
      const interp::RunResult base =
          run_function(*kernel.function, binary64, ref);
      const core::PipelineResult tuned = core::tune_kernel(
          *kernel.function, platform::stm32_table(), core::TuningConfig::fast());
      interp::ArrayStore out = kernel.inputs;
      const interp::RunResult run =
          run_function(*kernel.function, tuned.allocation.assignment, out);
      if (!base.ok || !run.ok) continue;
      platform::CostModelOptions opt;
      opt.non_real_op_cost = cost;
      speedups.add(platform::speedup_percent(
          platform::simulated_time(base.counters, platform::stm32_table(), opt),
          platform::simulated_time(run.counters, platform::stm32_table(), opt)));
    }
    std::printf("%-12g %13.1f%%\n", cost, speedups.mean());
  }
  std::printf("(0 isolates the arithmetic; the repository default is 0.25)\n");

  std::printf("\n=== Ablation D: static VRA vs dynamic profiling as the range "
              "source (Fast, Stm32) ===\n\n");
  std::printf("%-12s %14s %14s\n", "source", "mean speedup", "mean MPE");
  for (const bool dynamic : {false, true}) {
    RunningStats speedups, errors;
    for (const std::string& name : polybench::kernel_names()) {
      if (name == "gramschmidt" || name == "fdtd-2d") continue; // MPE blow-ups
      ir::Module m;
      polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
      interp::ArrayStore ref = kernel.inputs;
      interp::TypeAssignment binary64;
      const interp::RunResult base = run_function(*kernel.function, binary64, ref);
      if (!base.ok) continue;

      const vra::RangeMap ranges =
          dynamic ? core::profile_ranges(*kernel.function, kernel.inputs)
                  : vra::analyze_ranges(*kernel.function);
      const core::AllocationResult alloc =
          core::allocate_ilp(*kernel.function, ranges, platform::stm32_table(),
                             core::TuningConfig::fast());
      interp::ArrayStore out = kernel.inputs;
      const interp::RunResult run =
          run_function(*kernel.function, alloc.assignment, out);
      if (!run.ok) continue;
      speedups.add(platform::speedup_percent(
          platform::simulated_time(base.counters, platform::stm32_table()),
          platform::simulated_time(run.counters, platform::stm32_table())));
      std::vector<double> r, t;
      for (const std::string& o : kernel.outputs) {
        r.insert(r.end(), ref.at(o).begin(), ref.at(o).end());
        t.insert(t.end(), out.at(o).begin(), out.at(o).end());
      }
      const double mpe = mean_percentage_error(r, t);
      if (std::isfinite(mpe)) errors.add(mpe);
    }
    std::printf("%-12s %13.1f%% %13.3e%%\n", dynamic ? "profiled" : "static",
                speedups.mean(), errors.mean());
  }
  std::printf("(profiled register ranges are tighter -> more fractional bits "
              "-> lower error at the same speed)\n");
  return 0;
}
