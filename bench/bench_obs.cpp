// Observability overhead: what a TraceSpan costs when tracing is disabled
// (the price of leaving instrumentation in hot paths — one relaxed atomic
// load), when it is enabled, and what the always-on metrics instruments
// cost. Also prices a full traced vs. untraced VM run so the end-to-end
// overhead claim in docs/OBSERVABILITY.md stays honest.
#include <benchmark/benchmark.h>

#include "interp/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "polybench/polybench.hpp"

using namespace luis;

namespace {

void BM_SpanDisabled(benchmark::State& state) {
  obs::trace().stop();
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench", [] {
      return obs::Args().num("n", 1L).done();
    });
    benchmark::DoNotOptimize(span.live());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::trace().start();
  for (auto _ : state) {
    obs::TraceSpan span("bench.span", "bench", [] {
      return obs::Args().num("n", 1L).done();
    });
    benchmark::DoNotOptimize(span.live());
  }
  obs::trace().stop();
  obs::trace().clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_InstantEnabled(benchmark::State& state) {
  obs::trace().start();
  long i = 0;
  for (auto _ : state)
    obs::instant("bench.tick", "bench", obs::Args().num("i", ++i).done());
  obs::trace().stop();
  obs::trace().clear();
}
BENCHMARK(BM_InstantEnabled);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter& c = obs::metrics().counter("bench.counter");
  for (auto _ : state) c.inc();
}
BENCHMARK(BM_CounterInc);

void BM_CounterLookupAndInc(benchmark::State& state) {
  // The anti-pattern the metrics header warns about: resolving the
  // instrument by name on every hit takes the registry lock each time.
  for (auto _ : state) obs::metrics().counter("bench.counter").inc();
}
BENCHMARK(BM_CounterLookupAndInc);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& h = obs::metrics().histogram("bench.hist");
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1.0 ? v * 1.5 : 1e-6;
  }
}
BENCHMARK(BM_HistogramObserve);

/// End-to-end: one VM run of a small kernel, tracing off vs. on. The two
/// results side by side are the real overhead number for a traced run.
void run_kernel_once(bool traced, benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel built = polybench::build_kernel("trisolv", module);
  const interp::TypeAssignment types = interp::TypeAssignment::uniform(
      *built.function, {numrep::kBinary32, 0});
  const auto engine = interp::make_engine(interp::EngineKind::Vm);
  if (traced) obs::trace().start();
  for (auto _ : state) {
    interp::ArrayStore store = built.inputs;
    benchmark::DoNotOptimize(engine->run(*built.function, types, store));
  }
  if (traced) {
    obs::trace().stop();
    obs::trace().clear();
  }
}

void BM_VmRunUntraced(benchmark::State& state) { run_kernel_once(false, state); }
BENCHMARK(BM_VmRunUntraced);

void BM_VmRunTraced(benchmark::State& state) { run_kernel_once(true, state); }
BENCHMARK(BM_VmRunTraced);

/// Shadow-execution overhead: the same kernel with the binary64 shadow
/// and per-line error accumulators off vs. on, scalar and batched. The
/// off/on pairs side by side are the overhead numbers quoted in
/// docs/OBSERVABILITY.md ("Numerical-error profiling"); note the shadow
/// also disables SWAR packing in the batch engine, so the batched pair
/// prices both effects together.
void run_kernel_shadow(bool errors, benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel built = polybench::build_kernel("trisolv", module);
  const interp::TypeAssignment types = interp::TypeAssignment::uniform(
      *built.function, {numrep::kBinary32, 0});
  const auto engine = interp::make_engine(interp::EngineKind::Vm);
  for (auto _ : state) {
    interp::ArrayStore store = built.inputs;
    interp::ErrorProfile ep;
    interp::RunOptions opt;
    if (errors) opt.error_profile = &ep;
    benchmark::DoNotOptimize(
        engine->run(*built.function, types, store, opt));
  }
}

void BM_VmRunShadowOff(benchmark::State& state) {
  run_kernel_shadow(false, state);
}
BENCHMARK(BM_VmRunShadowOff);

void BM_VmRunShadowOn(benchmark::State& state) {
  run_kernel_shadow(true, state);
}
BENCHMARK(BM_VmRunShadowOn);

void run_batch_shadow(bool errors, benchmark::State& state) {
  ir::Module module;
  polybench::BuiltKernel built = polybench::build_kernel("trisolv", module);
  const std::vector<interp::TypeAssignment> lanes(
      8, interp::TypeAssignment::uniform(*built.function,
                                         {numrep::kBinary32, 0}));
  const interp::VmEngine vm;
  for (auto _ : state) {
    std::vector<interp::ArrayStore> stores(lanes.size(), built.inputs);
    std::vector<interp::ErrorProfile> eps(lanes.size());
    std::vector<interp::BatchRequest> reqs(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i)
      reqs[i] = {&lanes[i], &stores[i], nullptr,
                 errors ? &eps[i] : nullptr};
    benchmark::DoNotOptimize(vm.run_batch(*built.function, reqs, {}));
  }
}

void BM_BatchRunShadowOff(benchmark::State& state) {
  run_batch_shadow(false, state);
}
BENCHMARK(BM_BatchRunShadowOff);

void BM_BatchRunShadowOn(benchmark::State& state) {
  run_batch_shadow(true, state);
}
BENCHMARK(BM_BatchRunShadowOn);

} // namespace

BENCHMARK_MAIN();
