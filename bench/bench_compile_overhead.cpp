// Regenerates the compilation-overhead analysis of Section V-B: the
// slowdown of the LUIS pipeline (VRA + ILP model build + solve) relative
// to stock TAFFO (VRA + greedy allocation), per kernel, with the min /
// max / average summary the paper reports (1.48x / 3.25x / 2.10x).
//
// Two ILP variants are measured:
//  - "literal": the paper's exact formulation — one x variable per virtual
//    register, explicit x_{a,t} = x_{b,t} equality rows, per-use cast
//    indicators. This is the configuration whose overhead profile
//    corresponds to the paper's numbers (their OR-Tools models have the
//    same shape).
//  - "merged": our type-class-merged formulation, an order of magnitude
//    smaller at the same optimum (the ablation for the merging step).
//
// The paper measures whole-compiler wall time; a fixed shared base time
// stands in for the Clang + LLVM + conversion stages both pipelines share
// (the paper's baseline compilations take 0.66-0.97 s).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "platform/optime.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

int main() {
  constexpr double kBaseCompileSeconds = 0.8;

  std::printf("=== Compilation overhead of the ILP step (Section V-B) ===\n\n");
  std::printf("%-16s %10s | %10s %7s %7s %9s | %10s %7s %7s %9s\n", "kernel",
              "greedy[s]", "lit[s]", "vars", "rows", "slowdown", "mrg[s]",
              "vars", "rows", "slowdown");

  RunningStats literal_slowdown, merged_slowdown, literal_seconds;
  for (const std::string& name : polybench::kernel_names()) {
    ir::Module m1, m2, m3;
    polybench::BuiltKernel k1 = polybench::build_kernel(name, m1);
    polybench::BuiltKernel k2 = polybench::build_kernel(name, m2);
    polybench::BuiltKernel k3 = polybench::build_kernel(name, m3);

    core::PipelineOptions greedy_opt;
    greedy_opt.allocator = core::AllocatorKind::Greedy;
    const core::PipelineResult greedy = core::tune_kernel(
        *k1.function, platform::amd_table(), core::TuningConfig::balanced(),
        greedy_opt);

    core::TuningConfig literal_cfg = core::TuningConfig::balanced();
    literal_cfg.literal_model = true;
    const core::PipelineResult lit =
        core::tune_kernel(*k2.function, platform::amd_table(), literal_cfg);

    const core::PipelineResult mrg = core::tune_kernel(
        *k3.function, platform::amd_table(), core::TuningConfig::balanced());

    const double t_taffo = kBaseCompileSeconds + greedy.timings.total_seconds;
    const double s_lit = (kBaseCompileSeconds + lit.timings.total_seconds) / t_taffo;
    const double s_mrg = (kBaseCompileSeconds + mrg.timings.total_seconds) / t_taffo;
    literal_slowdown.add(s_lit);
    merged_slowdown.add(s_mrg);
    literal_seconds.add(lit.timings.allocation_seconds);

    std::printf("%-16s %10.4f | %10.4f %7zu %7zu %8.2fx | %10.4f %7zu %7zu "
                "%8.2fx\n",
                name.c_str(), greedy.timings.total_seconds, lit.timings.total_seconds,
                lit.allocation.stats.model_variables,
                lit.allocation.stats.model_constraints, s_lit,
                mrg.timings.total_seconds, mrg.allocation.stats.model_variables,
                mrg.allocation.stats.model_constraints, s_mrg);
  }

  std::printf("\nLiteral-model ILP time: min %.3fs avg %.3fs max %.3fs\n",
              literal_seconds.min(), literal_seconds.mean(),
              literal_seconds.max());
  std::printf("Whole-compilation slowdown (base %.2fs): literal min %.2fx "
              "avg %.2fx max %.2fx | merged min %.2fx avg %.2fx max %.2fx\n",
              kBaseCompileSeconds, literal_slowdown.min(),
              literal_slowdown.mean(), literal_slowdown.max(),
              merged_slowdown.min(), merged_slowdown.mean(),
              merged_slowdown.max());
  std::printf("(Paper: min 1.48x, avg 2.10x, max 3.25x — the literal column "
              "is the comparable one.)\n");
  return 0;
}
