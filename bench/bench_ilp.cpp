// Gate for the sparse revised simplex core: tunes PolyBench kernels with
// the pre-existing solver configuration (dense tableau core, cold-started
// B&B, most-fractional branching) and with the new default (sparse revised
// core, warm-started B&B, pseudo-cost branching), then compares answers —
// they must agree on the optimum, ideally on the exact assignment — and
// work (nodes, simplex iterations, solve seconds).
//
// Both the merged type-class formulation (the default) and the paper's
// literal per-register formulation are measured; the literal models are an
// order of magnitude larger and are where the solver work concentrates.
//
// Writes BENCH_ilp.json (machine-readable record, one entry per kernel and
// shape) and exits nonzero on any optimum mismatch, so CI can run it as a
// smoke job on the largest models.
//
// Usage: bench_ilp [--out FILE] [--merged-only] [kernel...]
//        (no kernels = all 30)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/assignment_io.hpp"
#include "core/pipeline.hpp"
#include "ilp/simplex.hpp"
#include "platform/optime.hpp"
#include "polybench/polybench.hpp"
#include "support/json.hpp"

using namespace luis;

namespace {

struct CoreRun {
  ilp::SolveStatus status = ilp::SolveStatus::Optimal;
  long nodes = 0;
  long iterations = 0;
  double solve_seconds = 0.0;
  double objective = 0.0;
  std::size_t model_variables = 0;
  std::size_t model_constraints = 0;
  std::string assignment_text;
};

CoreRun run_config(const std::string& kernel, bool literal, bool baseline) {
  ir::Module mod;
  const polybench::BuiltKernel k = polybench::build_kernel(kernel, mod);
  core::TuningConfig cfg = core::TuningConfig::balanced();
  cfg.literal_model = literal;
  if (baseline) {
    // The solver as it existed before the revised core landed.
    cfg.solver.lp.core = ilp::LpCore::Dense;
    cfg.solver.branching = ilp::Branching::MostFractional;
    cfg.solver.warm_start = false;
  } else {
    cfg.solver.lp.core = ilp::LpCore::Revised;
    cfg.solver.branching = ilp::Branching::PseudoCost;
    cfg.solver.warm_start = true;
  }
  const core::PipelineResult tuned =
      core::tune_kernel(*k.function, platform::amd_table(), cfg);

  CoreRun out;
  out.status = tuned.allocation.stats.status;
  out.nodes = tuned.allocation.stats.nodes;
  out.iterations = tuned.allocation.stats.iterations;
  out.solve_seconds = tuned.allocation.stats.solve_seconds;
  out.objective = tuned.allocation.stats.objective;
  out.model_variables = tuned.allocation.stats.model_variables;
  out.model_constraints = tuned.allocation.stats.model_constraints;
  out.assignment_text =
      core::assignment_to_text(*k.function, tuned.allocation.assignment);
  return out;
}

void write_run(JsonWriter& w, const CoreRun& r) {
  w.begin_object();
  w.key("status");
  w.value(to_string(r.status));
  w.key("nodes");
  w.value(r.nodes);
  w.key("iterations");
  w.value(r.iterations);
  w.key("solve_seconds");
  w.value(r.solve_seconds, "%.6g");
  w.key("objective");
  w.value(r.objective, "%.17g");
  w.end_object();
}

double ratio(double a, double b) { return a / std::max(b, 1e-12); }

} // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_ilp.json";
  bool merged_only = false;
  std::vector<std::string> kernels;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--merged-only") == 0) {
      merged_only = true;
    } else {
      kernels.emplace_back(argv[i]);
    }
  }
  if (kernels.empty()) {
    const std::span<const std::string> all = polybench::kernel_names();
    kernels.assign(all.begin(), all.end());
  }

  std::printf("=== ILP solver gate: old (dense, cold, most-fractional) vs "
              "new (revised, warm, pseudo-cost) ===\n\n");
  std::printf("%-16s %-7s %6s %6s | %7s %8s %9s | %7s %8s %9s | %6s %6s %s\n",
              "kernel", "shape", "vars", "rows", "o.nodes", "o.iters",
              "o.sec", "n.nodes", "n.iters", "n.sec", "nodeX", "timeX",
              "assign");

  JsonWriter w;
  w.begin_object();
  w.key("benchmark");
  w.value("ilp_solver_gate");
  w.key("config");
  w.value("Balanced");
  w.key("platform");
  w.value("amd");
  w.key("kernels");
  w.begin_array();

  bool mismatch = false;
  double node_sum = 0.0, time_sum = 0.0;
  int cells = 0;
  double largest_vars = 0.0, largest_node_ratio = 0.0,
         largest_time_ratio = 0.0;
  std::string largest_kernel;
  for (const std::string& kernel : kernels) {
    for (const bool literal : {false, true}) {
      if (literal && merged_only) continue;
      const CoreRun before = run_config(kernel, literal, /*baseline=*/true);
      const CoreRun after = run_config(kernel, literal, /*baseline=*/false);

      const bool status_ok = before.status == after.status;
      const double scale = std::max(1.0, std::abs(before.objective));
      const bool objective_ok =
          status_ok && (before.status != ilp::SolveStatus::Optimal ||
                        std::abs(before.objective - after.objective) <=
                            1e-6 * scale);
      const bool assignment_same =
          before.assignment_text == after.assignment_text;
      if (!objective_ok) mismatch = true;

      const double nx = ratio(static_cast<double>(before.nodes),
                              static_cast<double>(after.nodes));
      const double tx = ratio(before.solve_seconds, after.solve_seconds);
      node_sum += nx;
      time_sum += tx;
      ++cells;
      if (static_cast<double>(before.model_variables) > largest_vars) {
        largest_vars = static_cast<double>(before.model_variables);
        largest_kernel = kernel + (literal ? " (literal)" : " (merged)");
        largest_node_ratio = nx;
        largest_time_ratio = tx;
      }

      std::printf("%-16s %-7s %6zu %6zu | %7ld %8ld %9.4f | %7ld %8ld "
                  "%9.4f | %5.1fx %5.1fx %s%s\n",
                  kernel.c_str(), literal ? "literal" : "merged",
                  before.model_variables, before.model_constraints,
                  before.nodes, before.iterations, before.solve_seconds,
                  after.nodes, after.iterations, after.solve_seconds, nx, tx,
                  assignment_same ? "same" : "tied-alt",
                  objective_ok ? "" : "  ** OPTIMUM MISMATCH **");

      w.newline();
      w.begin_object();
      w.key("kernel");
      w.value(kernel);
      w.key("shape");
      w.value(literal ? "literal" : "merged");
      w.key("model_variables");
      w.value(before.model_variables);
      w.key("model_constraints");
      w.value(before.model_constraints);
      w.key("old");
      write_run(w, before);
      w.key("new");
      write_run(w, after);
      w.key("node_ratio");
      w.value(nx, "%.4g");
      w.key("time_ratio");
      w.value(tx, "%.4g");
      w.key("objectives_match");
      w.value(objective_ok);
      w.key("assignments_identical");
      w.value(assignment_same);
      w.end_object();
    }
  }
  w.end_array();

  w.key("summary");
  w.newline();
  w.begin_object();
  w.key("cells");
  w.value(cells);
  w.key("mean_node_ratio");
  w.value(node_sum / cells, "%.4g");
  w.key("mean_time_ratio");
  w.value(time_sum / cells, "%.4g");
  w.key("largest_model");
  w.value(largest_kernel);
  w.key("largest_node_ratio");
  w.value(largest_node_ratio, "%.4g");
  w.key("largest_time_ratio");
  w.value(largest_time_ratio, "%.4g");
  w.key("all_optima_match");
  w.value(!mismatch);
  w.end_object();
  w.end_object();
  w.newline();

  std::ofstream(out_path) << w.str();
  std::printf("\nMean node ratio %.2fx, mean solve-time ratio %.2fx; "
              "largest model (%s): %.2fx nodes, %.2fx time.\nWrote %s\n",
              node_sum / cells, time_sum / cells, largest_kernel.c_str(),
              largest_node_ratio, largest_time_ratio, out_path.c_str());
  if (mismatch) {
    std::printf("FAIL: old and new solvers disagree on at least one "
                "optimum.\n");
    return 1;
  }
  return 0;
}
