// Regenerates Figure 2 of the paper (Speedup% and MPE for the 30
// PolyBench/C kernels on 4 platforms under the Precise / Balanced / Fast
// presets and the stock-TAFFO greedy baseline) and the Table IV summary
// (fraction of benchmarks where the metric ordering tracks the W1 / W2
// parameter ordering, with a 10% tolerance).
//
// Also writes fig2_speedup.csv and fig2_mpe.csv next to the binary's CWD.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "experiment.hpp"
#include "support/string_utils.hpp"

using namespace luis;
using namespace luis::bench;

namespace {

void print_matrix(const std::vector<KernelResult>& grid, bool speedup) {
  std::printf("%-16s", "");
  for (const std::string& p : platform_order()) {
    for (const std::string& c : config_order())
      std::printf(" %9s", (p.substr(0, 3) + ":" + c.substr(0, 4)).c_str());
    std::printf(" |");
  }
  std::printf("\n");
  for (const KernelResult& kr : grid) {
    std::printf("%-16s", kr.kernel.c_str());
    for (const std::string& p : platform_order()) {
      for (const std::string& c : config_order()) {
        const Cell& cell = kr.cells.at(p).at(c);
        if (speedup)
          std::printf(" %9.1f", cell.speedup_percent);
        else
          std::printf(" %9s", format_mpe(cell.mpe).c_str());
      }
      std::printf(" |");
    }
    std::printf("\n");
  }
}

void write_csv(const std::vector<KernelResult>& grid, const char* path,
               bool speedup) {
  std::ofstream os(path);
  os << "kernel";
  for (const std::string& p : platform_order())
    for (const std::string& c : config_order()) os << "," << p << ":" << c;
  os << "\n";
  for (const KernelResult& kr : grid) {
    os << kr.kernel;
    for (const std::string& p : platform_order())
      for (const std::string& c : config_order()) {
        const Cell& cell = kr.cells.at(p).at(c);
        os << "," << (speedup ? cell.speedup_percent : cell.mpe);
      }
    os << "\n";
  }
}

/// Table IV: per machine, the percentage of benchmarks where the three
/// presets ordered by increasing speedup (resp. decreasing error) follow
/// increasing W1 (resp. increasing W2). Discrepancies within a 10% margin
/// are tolerated, as in the paper.
void print_table4(const std::vector<KernelResult>& grid) {
  std::printf("\n=== Table IV: parameter-ordering consistency (10%% margin) "
              "===\n\n%-12s %10s %10s\n", "Machine", "Time [%]", "Error [%]");
  for (const std::string& p : platform_order()) {
    int time_ok = 0, err_ok = 0, total = 0;
    for (const KernelResult& kr : grid) {
      const double s_prec = kr.cells.at(p).at("Precise").speedup_percent;
      const double s_bal = kr.cells.at(p).at("Balanced").speedup_percent;
      const double s_fast = kr.cells.at(p).at("Fast").speedup_percent;
      const double e_prec = kr.cells.at(p).at("Precise").mpe;
      const double e_bal = kr.cells.at(p).at("Balanced").mpe;
      const double e_fast = kr.cells.at(p).at("Fast").mpe;
      // Tolerance: 10% of the metric's spread for this benchmark.
      const double s_tol =
          0.10 * (std::max({s_prec, s_bal, s_fast}) -
                  std::min({s_prec, s_bal, s_fast}) + 1e-12);
      const double e_tol =
          0.10 * (std::max({e_prec, e_bal, e_fast}) -
                  std::min({e_prec, e_bal, e_fast}) + 1e-12);
      // Increasing W1 order is Precise < Balanced < Fast.
      if (s_prec <= s_bal + s_tol && s_bal <= s_fast + s_tol) ++time_ok;
      // Increasing W2 order (decreasing error) is Fast >= Balanced >= Precise.
      if (e_fast >= e_bal - e_tol && e_bal >= e_prec - e_tol) ++err_ok;
      ++total;
    }
    std::printf("%-12s %10.1f %10.1f\n", p.c_str(),
                100.0 * time_ok / total, 100.0 * err_ok / total);
  }
}

} // namespace

int main(int argc, char** argv) {
  std::printf("=== Table III: model parameters per configuration ===\n\n");
  std::printf("%-12s %6s %6s\n", "Configuration", "W1", "W2");
  std::printf("%-12s %6.0f %6.0f\n", "Fast", 1000.0, 1.0);
  std::printf("%-12s %6.0f %6.0f\n", "Balanced", 50.0, 50.0);
  std::printf("%-12s %6.0f %6.0f\n", "Precise", 1.0, 1000.0);

  GridOptions opt;
  // Optional worker-thread override (0 = hardware concurrency); the grid
  // values are identical at any thread count.
  if (argc > 1) opt.threads = std::atoi(argv[1]);
  const std::vector<KernelResult> grid = run_grid(opt);

  std::printf("\n=== Figure 2 (top): Speedup [%%] ===\n\n");
  print_matrix(grid, /*speedup=*/true);
  std::printf("\n=== Figure 2 (bottom): Mean Percentage Error [%%] ===\n\n");
  print_matrix(grid, /*speedup=*/false);
  print_table4(grid);

  write_csv(grid, "fig2_speedup.csv", true);
  write_csv(grid, "fig2_mpe.csv", false);
  std::printf("\nWrote fig2_speedup.csv and fig2_mpe.csv\n");

  // Headline claims of the abstract: max speedup and error coverage.
  double max_speedup = 0.0;
  int within = 0, cells = 0;
  for (const KernelResult& kr : grid) {
    for (const std::string& p : platform_order()) {
      for (const std::string& c : config_order()) {
        const Cell& cell = kr.cells.at(p).at(c);
        max_speedup = std::max(max_speedup, cell.speedup_percent);
        if (c != "TAFFO") {
          ++cells;
          if (cell.mpe < 2.8) ++within;
        }
      }
    }
  }
  std::printf("\nHeadline: max speedup %.0f%% (paper: up to ~800%%); "
              "%.1f%% of LUIS cells have MPE < 2.8%% (paper: >90%%).\n",
              max_speedup, 100.0 * within / cells);
  return 0;
}
