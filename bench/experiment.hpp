// Shared driver for the paper's evaluation grid (Section V):
// 30 PolyBench kernels x 4 platforms x {Precise, Balanced, Fast, TAFFO}.
//
// For every cell it reports the paper's two metrics — Speedup% against the
// unmodified (all-binary64) kernel and MPE against its outputs — plus the
// allocator statistics and tuning time used by the secondary tables.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/allocation.hpp"

namespace luis::bench {

struct Cell {
  double speedup_percent = 0.0;
  double mpe = 0.0;
  double tune_seconds = 0.0;      ///< allocation stage (model build + solve)
  double vra_seconds = 0.0;
  core::AllocationStats stats;
};

struct KernelResult {
  std::string kernel;
  /// cells[platform][config]; configs: "Precise", "Balanced", "Fast",
  /// "TAFFO" (the greedy baseline).
  std::map<std::string, std::map<std::string, Cell>> cells;
};

struct GridOptions {
  std::vector<std::string> kernels;   ///< empty = all 30
  std::vector<std::string> platforms; ///< empty = Stm32/Raspberry/Intel/AMD
  bool include_taffo = true;
  long solver_max_nodes = 3000;
  bool verbose = true; ///< progress lines on stderr
  /// Worker threads for the underlying sweep driver (0 = hardware
  /// concurrency, 1 = serial). Results are identical at any setting.
  int threads = 0;
  /// Execution engine for every interpretation in the grid ("vm" or
  /// "ref"); results are bit-identical either way.
  std::string engine = "vm";
};

/// Runs the grid on the parallel sweep driver (core::run_sweep) and
/// reshapes the job list into the per-kernel cell matrix the benches
/// print. The cell values are identical to the historical serial loop.
std::vector<KernelResult> run_grid(const GridOptions& options = {});

/// The config column order of Figure 2.
const std::vector<std::string>& config_order();
/// The platform column order of Figure 2.
const std::vector<std::string>& platform_order();

/// Formats a value like the paper's Figure 2 MPE annotations (0.00, 2.0e-6,
/// 126., ...).
std::string format_mpe(double mpe);

} // namespace luis::bench
