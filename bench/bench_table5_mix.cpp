// Regenerates Table V of the paper: the fraction of instructions allocated
// to each data type by the ILP model for the Stm32 machine, averaged over
// all PolyBench benchmarks, per configuration preset.
#include <cstdio>
#include <map>

#include "experiment.hpp"

using namespace luis::bench;

int main() {
  GridOptions opt;
  opt.platforms = {"Stm32"};
  opt.include_taffo = false;
  const std::vector<KernelResult> grid = run_grid(opt);

  std::printf("=== Table V: instruction mix [%%] on Stm32, averaged over all "
              "benchmarks ===\n\n");
  std::printf("%-10s %12s %12s %12s\n", "", "Fixed Point", "binary32",
              "binary64");
  for (const std::string& config : {"Precise", "Balanced", "Fast"}) {
    double fix = 0, f32 = 0, f64 = 0;
    for (const KernelResult& kr : grid) {
      const auto& mix = kr.cells.at("Stm32").at(config).stats.instruction_mix;
      double total = 0;
      for (const auto& [cls, count] : mix) total += count;
      if (total == 0) continue;
      const auto get = [&](const char* cls) {
        const auto it = mix.find(cls);
        return it == mix.end() ? 0.0 : it->second / total;
      };
      fix += get("fix");
      f32 += get("float");
      f64 += get("double");
    }
    const double n = static_cast<double>(grid.size());
    std::printf("%-10s %12.1f %12.1f %12.1f\n", config.c_str(),
                100.0 * fix / n, 100.0 * f32 / n, 100.0 * f64 / n);
  }
  std::printf("\n(Paper's Table V: Precise 0.2 / 2.5 / 97.3, Balanced 1.5 / "
              "20.8 / 77.6, Fast 71.6 / 27.0 / 1.4.)\n");
  return 0;
}
