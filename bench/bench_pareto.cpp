// The W1/W2 trade-off curve (Section IV-B: "the values of weights W1 and
// W2 can be chosen to fine-tune the trade-off between computation time and
// precision").
//
// Sweeps the weight ratio across six orders of magnitude for a few
// representative kernels on Stm32 and prints the (speedup, MPE) frontier
// each ratio reaches — the continuous version of the paper's three
// presets. Expected shape: monotone speedup in W1/W2, (weakly) monotone
// error, with the Table III presets sitting on the curve.
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

int main() {
  const char* kernels[] = {"gemm", "atax", "trisolv", "covariance"};
  // W1 : W2 ratios from extreme-precision to extreme-speed.
  const double ratios[] = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3};

  std::printf("=== Speedup/MPE frontier over the W1/W2 ratio (Stm32) ===\n\n");
  for (const char* name : kernels) {
    std::printf("%s:\n%12s %12s %12s  %s\n", name, "W1/W2", "speedup",
                "MPE", "mix");
    for (const double ratio : ratios) {
      ir::Module m;
      polybench::BuiltKernel kernel = polybench::build_kernel(name, m);

      interp::ArrayStore ref = kernel.inputs;
      interp::TypeAssignment binary64;
      const interp::RunResult base =
          run_function(*kernel.function, binary64, ref);
      if (!base.ok) continue;

      core::TuningConfig config;
      config.name = "sweep";
      // Keep W1 + W2 = 1001 like the presets' scale.
      config.w1 = 1001.0 * ratio / (1.0 + ratio);
      config.w2 = 1001.0 / (1.0 + ratio);
      const core::PipelineResult tuned =
          core::tune_kernel(*kernel.function, platform::stm32_table(), config);

      interp::ArrayStore out = kernel.inputs;
      const interp::RunResult run =
          run_function(*kernel.function, tuned.allocation.assignment, out);
      if (!run.ok) continue;

      std::vector<double> r, t;
      for (const std::string& o : kernel.outputs) {
        r.insert(r.end(), ref.at(o).begin(), ref.at(o).end());
        t.insert(t.end(), out.at(o).begin(), out.at(o).end());
      }
      std::printf("%12g %11.1f%% %12.3e ", ratio,
                  platform::speedup_percent(
                      platform::simulated_time(base.counters,
                                               platform::stm32_table()),
                      platform::simulated_time(run.counters,
                                               platform::stm32_table())),
                  mean_percentage_error(r, t));
      for (const auto& [cls, count] : tuned.allocation.stats.instruction_mix)
        std::printf(" %s=%d", cls.c_str(), count);
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("(Table III presets are the ratio points 1e-3 'Precise', 1 "
              "'Balanced', 1e3 'Fast'.)\n");
  return 0;
}
