#include "experiment.hpp"

#include <cstdio>

#include "core/pipeline.hpp"
#include "support/string_utils.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/diag.hpp"
#include "support/statistics.hpp"

namespace luis::bench {

const std::vector<std::string>& config_order() {
  static const std::vector<std::string> kOrder = {"Precise", "Balanced", "Fast",
                                                  "TAFFO"};
  return kOrder;
}

const std::vector<std::string>& platform_order() {
  static const std::vector<std::string> kOrder = {"Stm32", "Raspberry", "Intel",
                                                  "AMD"};
  return kOrder;
}

std::string format_mpe(double mpe) {
  if (mpe == 0.0) return "0.00";
  if (mpe >= 1000.0) return format_string("%.1e", mpe);
  if (mpe >= 1.0) return format_string("%.3g", mpe);
  return format_string("%.1e", mpe);
}

namespace {

core::TuningConfig config_by_name(const std::string& name, long max_nodes) {
  core::TuningConfig c;
  if (name == "Precise")
    c = core::TuningConfig::precise();
  else if (name == "Balanced")
    c = core::TuningConfig::balanced();
  else if (name == "Fast")
    c = core::TuningConfig::fast();
  else
    LUIS_FATAL("unknown config " + name);
  c.solver.max_nodes = max_nodes;
  return c;
}

/// MPE across all output arrays of a kernel (concatenated, matching how
/// PolyBench dumps every output array for comparison).
double kernel_mpe(const polybench::BuiltKernel& kernel,
                  const interp::ArrayStore& reference,
                  const interp::ArrayStore& tuned) {
  std::vector<double> ref, out;
  for (const std::string& name : kernel.outputs) {
    const auto& r = reference.at(name);
    const auto& t = tuned.at(name);
    ref.insert(ref.end(), r.begin(), r.end());
    out.insert(out.end(), t.begin(), t.end());
  }
  return mean_percentage_error(ref, out);
}

} // namespace

std::vector<KernelResult> run_grid(const GridOptions& opt) {
  std::vector<std::string> kernels = opt.kernels;
  if (kernels.empty())
    kernels.assign(polybench::kernel_names().begin(),
                   polybench::kernel_names().end());
  std::vector<std::string> platforms = opt.platforms;
  if (platforms.empty()) platforms = platform_order();

  std::vector<KernelResult> results;
  for (const std::string& kernel_name : kernels) {
    if (opt.verbose) std::fprintf(stderr, "[grid] %s\n", kernel_name.c_str());
    KernelResult kr;
    kr.kernel = kernel_name;

    ir::Module module;
    polybench::BuiltKernel kernel = polybench::build_kernel(kernel_name, module);

    // Unmodified baseline: all binary64. One execution profile serves all
    // platforms (only the op-time pricing differs).
    interp::ArrayStore reference = kernel.inputs;
    interp::TypeAssignment binary64;
    const interp::RunResult base =
        run_function(*kernel.function, binary64, reference);
    LUIS_ASSERT(base.ok, kernel_name + " baseline failed: " + base.error);

    // TAFFO greedy baseline: platform-blind allocation, one run.
    interp::RunResult taffo_run;
    interp::ArrayStore taffo_out;
    core::PipelineResult taffo_tuned;
    if (opt.include_taffo) {
      core::PipelineOptions popt;
      popt.allocator = core::AllocatorKind::Greedy;
      taffo_tuned = core::tune_kernel(*kernel.function,
                                      platform::stm32_table(), // unused by greedy
                                      core::TuningConfig::balanced(), popt);
      taffo_out = kernel.inputs;
      taffo_run = run_function(*kernel.function,
                               taffo_tuned.allocation.assignment, taffo_out);
      LUIS_ASSERT(taffo_run.ok, kernel_name + " TAFFO run failed");
    }

    for (const std::string& platform_name : platforms) {
      const platform::OpTimeTable* table =
          platform::platform_by_name(platform_name);
      LUIS_ASSERT(table != nullptr, "unknown platform " + platform_name);
      const double t_base = platform::simulated_time(base.counters, *table);

      for (const std::string& config_name : config_order()) {
        if (config_name == "TAFFO") {
          if (!opt.include_taffo) continue;
          Cell cell;
          cell.speedup_percent = platform::speedup_percent(
              t_base, platform::simulated_time(taffo_run.counters, *table));
          cell.mpe = kernel_mpe(kernel, reference, taffo_out);
          cell.tune_seconds = taffo_tuned.allocation_seconds;
          cell.vra_seconds = taffo_tuned.vra_seconds;
          cell.stats = taffo_tuned.allocation.stats;
          kr.cells[platform_name][config_name] = cell;
          continue;
        }

        core::PipelineOptions popt;
        const core::PipelineResult tuned = core::tune_kernel(
            *kernel.function, *table,
            config_by_name(config_name, opt.solver_max_nodes), popt);

        interp::ArrayStore out = kernel.inputs;
        const interp::RunResult run =
            run_function(*kernel.function, tuned.allocation.assignment, out);
        LUIS_ASSERT(run.ok, kernel_name + "/" + config_name + " run failed");

        Cell cell;
        cell.speedup_percent = platform::speedup_percent(
            t_base, platform::simulated_time(run.counters, *table));
        cell.mpe = kernel_mpe(kernel, reference, out);
        cell.tune_seconds = tuned.allocation_seconds;
        cell.vra_seconds = tuned.vra_seconds;
        cell.stats = tuned.allocation.stats;
        kr.cells[platform_name][config_name] = cell;
      }
    }
    results.push_back(std::move(kr));
  }
  return results;
}

} // namespace luis::bench
