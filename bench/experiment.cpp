#include "experiment.hpp"

#include "core/sweep.hpp"
#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis::bench {

const std::vector<std::string>& config_order() {
  static const std::vector<std::string> kOrder = {"Precise", "Balanced", "Fast",
                                                  "TAFFO"};
  return kOrder;
}

const std::vector<std::string>& platform_order() {
  static const std::vector<std::string> kOrder = {"Stm32", "Raspberry", "Intel",
                                                  "AMD"};
  return kOrder;
}

std::string format_mpe(double mpe) {
  if (mpe == 0.0) return "0.00";
  if (mpe >= 1000.0) return format_string("%.1e", mpe);
  if (mpe >= 1.0) return format_string("%.3g", mpe);
  return format_string("%.1e", mpe);
}

std::vector<KernelResult> run_grid(const GridOptions& opt) {
  core::SweepOptions sweep;
  sweep.kernels = opt.kernels;
  sweep.platforms = opt.platforms;
  sweep.include_taffo = opt.include_taffo;
  sweep.solver_max_nodes = opt.solver_max_nodes;
  sweep.threads = opt.threads;
  sweep.verbose = opt.verbose;
  sweep.engine = opt.engine;
  // The benches only consume the cell values; the determinism self-check
  // is covered by the sweep tests and `luis sweep`.
  sweep.check_determinism = false;
  const core::SweepResult result = core::run_sweep(sweep);

  std::vector<KernelResult> results;
  for (const core::SweepJobResult& job : result.jobs) {
    LUIS_ASSERT(job.ok,
                (job.kernel + "/" + job.config + ": " + job.error).c_str());
    if (results.empty() || results.back().kernel != job.kernel) {
      results.emplace_back();
      results.back().kernel = job.kernel;
    }
    Cell cell;
    cell.speedup_percent = job.speedup_percent;
    cell.mpe = job.mpe;
    cell.tune_seconds = job.timings.allocation_seconds;
    cell.vra_seconds = job.timings.vra_seconds;
    cell.stats = job.stats;
    results.back().cells[job.platform][job.config] = cell;
  }
  return results;
}

} // namespace luis::bench
