// Sweep interpretation throughput: batched lane execution vs. the scalar
// VM, on the exact workload the sweep driver hands the engine.
//
// Setup (untimed): every kernel's (config x platform) grid — the Multi
// preset plus the three Table III presets over all four platforms — is
// tuned via core::run_sweep, and each job's tuned assignment is reloaded
// through assignment_io. That reproduces the sweep's interpretation
// workload faithfully, duplicates included: distinct (config, platform)
// jobs frequently tune to the same assignment, and exploiting that is
// part of the batched path's design (core/sweep.cpp dedups lanes the
// same way).
//
// Timed, per kernel:
//   scalar  one engine.run() per grid job — the pre-batching sweep loop;
//   batch   dedup the job assignments into unique lanes, then one
//           engine.run_batch() — what the sweep's batch path executes.
//
// Before timing, every unique lane is checked bit-for-bit against the
// tree-walking ReferenceEngine — verdict, error text, step count, cost
// counters, and every output buffer. A mismatch aborts with exit 1: a
// wrong engine must not report a throughput number. Both timed modes run
// against the same warm ProgramCache (the verify pass fills it), so the
// numbers isolate interpretation, exactly like a cached sweep.
//
//   bench_engine [--kernels a,b,c] [--configs c1,c2] [--reps N]
//                [--json PATH]
//
// Prints one line per kernel and an aggregate; the aggregate speedup is
// the number quoted in docs/INTERP.md ("Batched execution") and recorded
// in BENCH_engine.json by the bench-engine-smoke CI job via --json.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/assignment_io.hpp"
#include "core/sweep.hpp"
#include "interp/engine.hpp"
#include "polybench/polybench.hpp"
#include "support/json.hpp"
#include "support/string_utils.hpp"

using namespace luis;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Lane {
  std::string label; ///< "config/platform" of the job that tuned it
  std::string text;  ///< canonical serialization, the dedup key
  interp::TypeAssignment types;
};

/// Tunes the kernel's whole grid and reloads every job's assignment
/// against `f`. Aborts the bench if any tuning job failed — a partial
/// grid would silently shrink the workload.
std::vector<Lane> tuned_grid_lanes(const std::string& kernel,
                                   const ir::Function& f,
                                   const std::vector<std::string>& configs) {
  core::SweepOptions opt;
  opt.kernels = {kernel};
  opt.configs = configs;
  opt.include_taffo = false;
  opt.check_determinism = false;
  opt.threads = 1;
  const core::SweepResult sweep = core::run_sweep(opt);

  std::vector<Lane> lanes;
  for (const core::SweepJobResult& job : sweep.jobs) {
    if (!job.ok) {
      std::fprintf(stderr, "bench_engine: tuning %s/%s/%s failed: %s\n",
                   job.kernel.c_str(), job.config.c_str(),
                   job.platform.c_str(), job.error.c_str());
      std::exit(1);
    }
    const core::AssignmentParseResult parsed =
        core::assignment_from_text(f, job.assignment_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_engine: reloading %s/%s/%s: %s\n",
                   job.kernel.c_str(), job.config.c_str(),
                   job.platform.c_str(), parsed.error.c_str());
      std::exit(1);
    }
    lanes.push_back({job.config + "/" + job.platform, job.assignment_text,
                     parsed.assignment});
  }
  return lanes;
}

/// Indices of the first occurrence of each distinct assignment text — the
/// same dedup the sweep's batch path performs before run_batch().
std::vector<std::size_t> unique_lane_indices(const std::vector<Lane>& lanes) {
  std::vector<std::size_t> unique;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    bool seen = false;
    for (const std::size_t u : unique)
      if (lanes[u].text == lanes[i].text) {
        seen = true;
        break;
      }
    if (!seen) unique.push_back(i);
  }
  return unique;
}

bool buffers_bit_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  return true;
}

/// One batched run over the unique lanes, checked bit-for-bit against a
/// reference run per lane. Returns false (after printing the mismatch) on
/// any divergence. Also the warm-up that fills the program cache.
bool verify_lanes(const interp::VmEngine& vm, const ir::Function& f,
                  const std::vector<Lane>& lanes,
                  const std::vector<std::size_t>& unique,
                  const interp::ArrayStore& inputs) {
  const interp::ReferenceEngine ref;
  std::vector<interp::ArrayStore> stores(unique.size(), inputs);
  std::vector<interp::BatchRequest> reqs(unique.size());
  for (std::size_t i = 0; i < unique.size(); ++i)
    reqs[i] = {&lanes[unique[i]].types, &stores[i], nullptr};
  const std::vector<interp::RunResult> got = vm.run_batch(f, reqs);

  for (std::size_t i = 0; i < unique.size(); ++i) {
    const Lane& lane = lanes[unique[i]];
    interp::ArrayStore ref_store = inputs;
    const interp::RunResult want = ref.run(f, lane.types, ref_store);
    const char* field = nullptr;
    if (want.ok != got[i].ok || want.error != got[i].error)
      field = "verdict";
    else if (want.steps != got[i].steps)
      field = "steps";
    else if (want.counters.ops != got[i].counters.ops ||
             want.counters.non_real_ops != got[i].counters.non_real_ops)
      field = "cost counters";
    else
      for (const auto& [name, buf] : ref_store)
        if (!buffers_bit_equal(buf, stores[i].at(name))) {
          field = "output buffers";
          break;
        }
    if (field != nullptr) {
      std::fprintf(stderr,
                   "bench_engine: %s lane %s: batch disagrees with the "
                   "reference engine on %s\n",
                   f.name().c_str(), lane.label.c_str(), field);
      return false;
    }
  }
  return true;
}

/// `reps` scalar executions of every grid job: the pre-batching sweep
/// loop interprets each job separately, duplicate assignments included.
double time_scalar(const interp::VmEngine& vm, const ir::Function& f,
                   const std::vector<Lane>& lanes,
                   const interp::ArrayStore& inputs, int reps) {
  const double t0 = now_seconds();
  for (int r = 0; r < reps; ++r)
    for (const Lane& lane : lanes) {
      interp::ArrayStore store = inputs;
      (void)vm.run(f, lane.types, store);
    }
  return now_seconds() - t0;
}

/// `reps` batched executions of the same workload: dedup (timed — the
/// sweep pays for it too) plus one run_batch over the unique lanes.
double time_batch(const interp::VmEngine& vm, const ir::Function& f,
                  const std::vector<Lane>& lanes,
                  const interp::ArrayStore& inputs, int reps) {
  const double t0 = now_seconds();
  for (int r = 0; r < reps; ++r) {
    const std::vector<std::size_t> unique = unique_lane_indices(lanes);
    std::vector<interp::ArrayStore> stores(unique.size(), inputs);
    std::vector<interp::BatchRequest> reqs(unique.size());
    for (std::size_t i = 0; i < unique.size(); ++i)
      reqs[i] = {&lanes[unique[i]].types, &stores[i], nullptr};
    (void)vm.run_batch(f, reqs);
  }
  return now_seconds() - t0;
}

struct KernelRow {
  std::string kernel;
  std::size_t jobs = 0;
  std::size_t unique = 0;
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
};

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> kernels = {"gemm", "atax", "bicg",
                                      "mvt",  "syrk", "jacobi-2d"};
  std::vector<std::string> configs = {"Fast", "Balanced", "Precise", "Multi"};
  int reps = 5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernels" && i + 1 < argc) {
      kernels = split_fields(argv[++i], ',');
    } else if (a == "--configs" && i + 1 < argc) {
      configs = split_fields(argv[++i], ',');
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_engine [--kernels a,b,c] "
                           "[--configs c1,c2] [--reps N] [--json PATH]\n");
      return 2;
    }
  }

  interp::ProgramCache cache;
  const interp::VmEngine vm(&cache);

  std::printf("%-14s %6s %8s %12s %12s %9s\n", "kernel", "jobs", "unique",
              "scalar[ms]", "batch[ms]", "speedup");
  std::vector<KernelRow> rows;
  double scalar_total = 0.0, batch_total = 0.0;
  for (const std::string& name : kernels) {
    ir::Module module;
    const polybench::BuiltKernel kernel = polybench::build_kernel(name, module);
    const std::vector<Lane> lanes =
        tuned_grid_lanes(name, *kernel.function, configs);
    const std::vector<std::size_t> unique = unique_lane_indices(lanes);
    if (!verify_lanes(vm, *kernel.function, lanes, unique, kernel.inputs))
      return 1;
    const double t_scalar =
        time_scalar(vm, *kernel.function, lanes, kernel.inputs, reps);
    const double t_batch =
        time_batch(vm, *kernel.function, lanes, kernel.inputs, reps);
    scalar_total += t_scalar;
    batch_total += t_batch;
    rows.push_back({name, lanes.size(), unique.size(), t_scalar, t_batch});
    std::printf("%-14s %6zu %8zu %12.2f %12.2f %8.2fx\n", name.c_str(),
                lanes.size(), unique.size(), t_scalar * 1e3, t_batch * 1e3,
                t_scalar / t_batch);
  }
  const interp::ProgramCache::Stats stats = cache.stats();
  std::printf("\nprogram cache: %ld lookups, %ld hits, %ld insertions\n",
              stats.lookups, stats.hits, stats.insertions);
  std::printf("aggregate: scalar %.2f s, batch %.2f s, speedup %.2fx "
              "(all lanes verified against the reference engine)\n",
              scalar_total, batch_total, scalar_total / batch_total);

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("benchmark"), w.value("engine_batch");
    w.key("configs");
    w.begin_array();
    for (const std::string& c : configs) w.value(c);
    w.end_array();
    w.key("reps"), w.value(reps);
    w.newline();
    w.key("kernels");
    w.begin_array();
    for (const KernelRow& row : rows) {
      w.newline();
      w.begin_object();
      w.key("kernel"), w.value(row.kernel);
      w.key("jobs"), w.value(row.jobs);
      w.key("unique_lanes"), w.value(row.unique);
      w.key("scalar_seconds"), w.value(row.scalar_seconds, "%.6g");
      w.key("batch_seconds"), w.value(row.batch_seconds, "%.6g");
      w.key("speedup"), w.value(row.scalar_seconds / row.batch_seconds,
                                "%.4g");
      w.end_object();
    }
    w.newline();
    w.end_array();
    w.newline();
    w.key("aggregate");
    w.begin_object();
    w.key("scalar_seconds"), w.value(scalar_total, "%.6g");
    w.key("batch_seconds"), w.value(batch_total, "%.6g");
    w.key("speedup"), w.value(scalar_total / batch_total, "%.4g");
    w.key("verified"), w.value(true);
    w.end_object();
    w.end_object();
    w.newline();
    std::ofstream os(json_path);
    os << w.str();
    if (!os.good()) {
      std::fprintf(stderr, "bench_engine: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
  }
  return 0;
}
