// Interpretation throughput: bytecode VM vs. the reference tree-walker.
//
// Replays the sweep's interpretation pattern — every kernel is executed
// repeatedly under several type assignments, as the (config x platform)
// grid does — through both execution engines and reports the throughput
// ratio. The VM runs with a shared ProgramCache, so after the first
// repetition the compile phase is a key render + lookup, exactly like a
// cached sweep.
//
//   bench_engine [--kernels a,b,c] [--reps N]
//
// Prints one line per (kernel, assignment) and an aggregate; the
// aggregate speedup is the number quoted in docs/INTERP.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "polybench/polybench.hpp"
#include "support/string_utils.hpp"

using namespace luis;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Case {
  std::string label;
  interp::TypeAssignment types;
};

std::vector<Case> assignment_cases(const ir::Function& f) {
  std::vector<Case> cases;
  cases.push_back({"binary64", {}});
  cases.push_back(
      {"binary32", interp::TypeAssignment::uniform(f, {numrep::kBinary32, 0})});
  cases.push_back(
      {"fix32.16", interp::TypeAssignment::uniform(f, {numrep::kFixed32, 16})});
  return cases;
}

/// Runs `reps` executions through `engine` and returns the elapsed wall
/// time. Aborts the bench on any failed run — a broken engine must not
/// report a throughput number.
double time_engine(const interp::ExecutionEngine& engine, const ir::Function& f,
                   const interp::TypeAssignment& types,
                   const interp::ArrayStore& inputs, int reps) {
  const double t0 = now_seconds();
  for (int r = 0; r < reps; ++r) {
    interp::ArrayStore store = inputs;
    const interp::RunResult run = engine.run(f, types, store);
    if (!run.ok) {
      std::fprintf(stderr, "bench_engine: %s failed on %s: %s\n", engine.name(),
                   f.name().c_str(), run.error.c_str());
      std::exit(1);
    }
  }
  return now_seconds() - t0;
}

} // namespace

int main(int argc, char** argv) {
  std::vector<std::string> kernels = {"gemm", "atax", "bicg",
                                      "mvt",  "syrk", "jacobi-2d"};
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--kernels" && i + 1 < argc) {
      kernels = split_fields(argv[++i], ',');
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_engine [--kernels a,b,c] [--reps N]\n");
      return 2;
    }
  }

  const interp::ReferenceEngine ref;
  interp::ProgramCache cache;
  const interp::VmEngine vm(&cache);

  std::printf("%-14s %-10s %12s %12s %9s\n", "kernel", "types", "ref[ms]",
              "vm[ms]", "speedup");
  double ref_total = 0.0, vm_total = 0.0;
  for (const std::string& name : kernels) {
    ir::Module module;
    const polybench::BuiltKernel kernel = polybench::build_kernel(name, module);
    for (const Case& c : assignment_cases(*kernel.function)) {
      const double t_ref =
          time_engine(ref, *kernel.function, c.types, kernel.inputs, reps);
      const double t_vm =
          time_engine(vm, *kernel.function, c.types, kernel.inputs, reps);
      ref_total += t_ref;
      vm_total += t_vm;
      std::printf("%-14s %-10s %12.2f %12.2f %8.2fx\n", name.c_str(),
                  c.label.c_str(), t_ref * 1e3, t_vm * 1e3, t_ref / t_vm);
    }
  }
  const interp::ProgramCache::Stats stats = cache.stats();
  std::printf("\nprogram cache: %ld lookups, %ld hits, %ld insertions\n",
              stats.lookups, stats.hits, stats.insertions);
  std::printf("aggregate: ref %.2f s, vm %.2f s, speedup %.2fx\n", ref_total,
              vm_total, ref_total / vm_total);
  return 0;
}
