// Dataset-size sensitivity.
//
// The reproduction runs PolyBench at reduced extents (Mini); this bench
// re-tunes and re-measures a representative subset at 2x (Small) and 4x
// (Medium) extents to show which conclusions are size-stable: speedups
// are nearly size-invariant (the op mix is), while the MPE of the
// blow-up kernels grows with accumulation depth — the caveat recorded in
// EXPERIMENTS.md.
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

namespace {

const char* size_name(polybench::DatasetSize s) {
  switch (s) {
  case polybench::DatasetSize::Mini: return "Mini";
  case polybench::DatasetSize::Small: return "Small";
  case polybench::DatasetSize::Medium: return "Medium";
  }
  return "?";
}

} // namespace

int main() {
  // 2D/1D kernels can afford Medium; the blow-up kernels show the error
  // trend; gemm/atax stand in for the stable majority.
  const char* kernels[] = {"gemm", "atax", "jacobi-2d", "gramschmidt",
                           "durbin"};
  std::printf("=== Dataset-size sensitivity (Fast preset, Stm32) ===\n\n");
  std::printf("%-14s %-8s %12s %12s %14s\n", "kernel", "size", "speedup",
              "MPE", "kernel steps");
  for (const char* name : kernels) {
    for (const polybench::DatasetSize size :
         {polybench::DatasetSize::Mini, polybench::DatasetSize::Small,
          polybench::DatasetSize::Medium}) {
      ir::Module m;
      polybench::BuiltKernel kernel =
          polybench::build_kernel(name, m, true, size);

      interp::ArrayStore ref = kernel.inputs;
      interp::TypeAssignment binary64;
      const interp::RunResult base =
          run_function(*kernel.function, binary64, ref);
      if (!base.ok) continue;

      const core::PipelineResult tuned = core::tune_kernel(
          *kernel.function, platform::stm32_table(), core::TuningConfig::fast());
      interp::ArrayStore out = kernel.inputs;
      const interp::RunResult run =
          run_function(*kernel.function, tuned.allocation.assignment, out);
      if (!run.ok) continue;

      std::vector<double> r, t;
      for (const std::string& o : kernel.outputs) {
        r.insert(r.end(), ref.at(o).begin(), ref.at(o).end());
        t.insert(t.end(), out.at(o).begin(), out.at(o).end());
      }
      std::printf("%-14s %-8s %11.1f%% %12.3e %14ld\n", name, size_name(size),
                  platform::speedup_percent(
                      platform::simulated_time(base.counters,
                                               platform::stm32_table()),
                      platform::simulated_time(run.counters,
                                               platform::stm32_table())),
                  mean_percentage_error(r, t), run.steps);
    }
    std::printf("\n");
  }
  return 0;
}
