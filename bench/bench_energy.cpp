// Section VI extension experiment: the cost function as an energy model.
//
// For every PolyBench kernel, tunes with the Fast preset twice — once
// pricing op-time (the paper's model) and once pricing op-energy — and
// reports both metrics for both allocations on the Stm32 and Intel
// machine models. Shows where the two objectives diverge (they agree
// whenever the cheapest-time type is also the cheapest-energy one, and
// split on kernels whose float/fixed trade-off is marginal in time but
// decisive in power).
#include <cstdio>

#include "core/pipeline.hpp"
#include "platform/cost_model.hpp"
#include "platform/energy.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

namespace {

struct Outcome {
  double speedup = 0.0;
  double energy_saving = 0.0;
};

Outcome evaluate(const polybench::BuiltKernel& kernel,
                 const interp::RunResult& base,
                 const interp::TypeAssignment& assignment,
                 const platform::OpTimeTable& table) {
  interp::ArrayStore out = kernel.inputs;
  const interp::RunResult run = run_function(*kernel.function, assignment, out);
  Outcome o;
  if (!run.ok) return o;
  o.speedup = platform::speedup_percent(
      platform::simulated_time(base.counters, table),
      platform::simulated_time(run.counters, table));
  o.energy_saving = platform::energy_saving_percent(
      platform::simulated_energy(base.counters, table),
      platform::simulated_energy(run.counters, table));
  return o;
}

} // namespace

int main() {
  for (const char* platform_name : {"Stm32", "Intel"}) {
    const platform::OpTimeTable* table =
        platform::platform_by_name(platform_name);
    std::printf("=== %s: time-objective vs energy-objective tuning (Fast "
                "preset) ===\n\n",
                platform_name);
    std::printf("%-16s | %9s %9s | %9s %9s | %s\n", "kernel", "T:speedup",
                "T:energy", "E:speedup", "E:energy", "diverged");
    RunningStats t_energy, e_energy;
    int diverged = 0;
    for (const std::string& name : polybench::kernel_names()) {
      ir::Module m1, m2;
      polybench::BuiltKernel k1 = polybench::build_kernel(name, m1);
      polybench::BuiltKernel k2 = polybench::build_kernel(name, m2);

      interp::ArrayStore ref = k1.inputs;
      interp::TypeAssignment binary64;
      const interp::RunResult base = run_function(*k1.function, binary64, ref);
      if (!base.ok) continue;

      core::TuningConfig time_cfg = core::TuningConfig::fast();
      core::TuningConfig energy_cfg = core::TuningConfig::fast();
      energy_cfg.metric = core::CostMetric::Energy;

      const core::PipelineResult by_time =
          core::tune_kernel(*k1.function, *table, time_cfg);
      const core::PipelineResult by_energy =
          core::tune_kernel(*k2.function, *table, energy_cfg);

      const Outcome t =
          evaluate(k1, base, by_time.allocation.assignment, *table);
      // Evaluate the energy allocation on its own twin function.
      interp::ArrayStore ref2 = k2.inputs;
      const interp::RunResult base2 = run_function(*k2.function, binary64, ref2);
      const Outcome e =
          evaluate(k2, base2, by_energy.allocation.assignment, *table);

      const bool differs =
          by_time.allocation.stats.instruction_mix !=
          by_energy.allocation.stats.instruction_mix;
      diverged += differs ? 1 : 0;
      t_energy.add(t.energy_saving);
      e_energy.add(e.energy_saving);
      std::printf("%-16s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% | %s\n",
                  name.c_str(), t.speedup, t.energy_saving, e.speedup,
                  e.energy_saving, differs ? "yes" : "");
    }
    std::printf("\nmean energy saving: time-tuned %.1f%%, energy-tuned %.1f%%; "
                "allocations diverged on %d/30 kernels\n\n",
                t_energy.mean(), e_energy.mean(), diverged);
  }
  return 0;
}
