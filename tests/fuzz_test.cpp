// Randomized end-to-end property tests: generated loop-nest kernels are
// pushed through the whole stack (build -> verify -> print/parse round trip
// -> VRA -> ILP and greedy allocation -> execution) and the pipeline-level
// invariants are checked on each.
//
// The kernels come from the shared fuzzing generator (src/testing); the
// structural properties of the programs themselves (round trip, clone,
// interpreter determinism) are that harness's job — this file checks what
// only the full pipeline can: tuning preserves semantics and the presets
// order as promised.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cast_materializer.hpp"
#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "platform/cost_model.hpp"
#include "support/rng.hpp"
#include "testing/ir_fuzz.hpp"

namespace luis {
namespace {

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, WholeStackInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    ir::Module m;
    const testing::GeneratedIr k = testing::generate_ir_kernel(
        m, rng, {}, "fuzz" + std::to_string(trial));

    // Structural invariants.
    const ir::VerifyResult vr = ir::verify(*k.function);
    ASSERT_TRUE(vr.ok()) << vr.message();

    // Printer/parser round trip.
    const std::string text = ir::print_function(*k.function);
    ir::Module m2;
    const ir::ParseResult parsed = ir::parse_function(m2, text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(ir::print_function(*parsed.function), text);

    // Reference execution is finite.
    interp::ArrayStore ref = k.inputs;
    interp::TypeAssignment binary64;
    const interp::RunResult base = run_function(*k.function, binary64, ref);
    ASSERT_TRUE(base.ok) << base.error;
    for (const auto& [name, buf] : ref)
      for (double v : buf) ASSERT_TRUE(std::isfinite(v)) << name;

    // Precise tuning is functionally equivalent; Fast never slower than
    // Precise on the FPU-less machine; both allocators terminate.
    const core::PipelineResult precise = core::tune_kernel(
        *k.function, platform::stm32_table(), core::TuningConfig::precise());
    interp::ArrayStore out_p = k.inputs;
    const interp::RunResult run_p =
        run_function(*k.function, precise.allocation.assignment, out_p);
    ASSERT_TRUE(run_p.ok) << run_p.error;
    const std::string dst = k.function->arrays().front()->name();
    EXPECT_EQ(ref.at(dst), out_p.at(dst));

    const core::PipelineResult fast = core::tune_kernel(
        *k.function, platform::stm32_table(), core::TuningConfig::fast());
    interp::ArrayStore out_f = k.inputs;
    const interp::RunResult run_f =
        run_function(*k.function, fast.allocation.assignment, out_f);
    ASSERT_TRUE(run_f.ok) << run_f.error;
    const double t_p =
        platform::simulated_time(run_p.counters, platform::stm32_table());
    const double t_f =
        platform::simulated_time(run_f.counters, platform::stm32_table());
    EXPECT_LE(t_f, t_p * 1.001);

    // The greedy baseline also executes without incident.
    const vra::RangeMap ranges = vra::analyze_ranges(*k.function);
    const core::AllocationResult greedy =
        core::allocate_greedy(*k.function, ranges, core::TuningConfig());
    interp::ArrayStore out_g = k.inputs;
    EXPECT_TRUE(run_function(*k.function, greedy.assignment, out_g).ok);

    // Cast materialization keeps semantics.
    interp::TypeAssignment assignment = fast.allocation.assignment;
    core::materialize_casts(*k.function, assignment);
    ASSERT_TRUE(ir::verify(*k.function).ok());
    interp::ArrayStore out_m = k.inputs;
    const interp::RunResult run_m = run_function(*k.function, assignment, out_m);
    ASSERT_TRUE(run_m.ok) << run_m.error;
    EXPECT_EQ(out_f.at(dst), out_m.at(dst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(1, 6));

} // namespace
} // namespace luis
