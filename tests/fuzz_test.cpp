// Randomized end-to-end property tests: generated loop-nest kernels are
// pushed through the whole stack (build -> verify -> print/parse round trip
// -> VRA -> ILP and greedy allocation -> execution) and the pipeline-level
// invariants are checked on each.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cast_materializer.hpp"
#include "core/pipeline.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "platform/cost_model.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

namespace luis {
namespace {

using ir::Array;
using ir::BVal;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;

struct GeneratedKernel {
  ir::Function* function;
  interp::ArrayStore inputs;
};

/// Builds a random but well-formed kernel: 2-4 arrays, a loop nest of depth
/// 1-2, and a random expression tree stored back. Expressions avoid
/// division by values straddling zero so that every generated program is
/// numerically tame.
GeneratedKernel generate(ir::Module& m, Rng& rng, int id) {
  KernelBuilder kb(m, "fuzz" + std::to_string(id));
  const std::int64_t n = rng.next_int(4, 10);
  const int narrays = static_cast<int>(rng.next_int(2, 4));
  std::vector<Array*> arrays;
  GeneratedKernel out;
  for (int a = 0; a < narrays; ++a) {
    const bool two_d = rng.next_bool(0.5);
    std::vector<std::int64_t> dims =
        two_d ? std::vector<std::int64_t>{n, n} : std::vector<std::int64_t>{n};
    Array* arr = kb.array("A" + std::to_string(a), dims, 0.25, 8.0);
    arrays.push_back(arr);
    auto& buf = out.inputs[arr->name()];
    for (std::int64_t i = 0; i < arr->element_count(); ++i)
      buf.push_back(rng.next_double(0.25, 8.0));
  }

  // A random real expression over loaded values (recursive, bounded).
  std::function<RVal(IVal, int)> expr = [&](IVal i, int depth) -> RVal {
    auto leaf = [&]() -> RVal {
      Array* arr = arrays[rng.next_below(arrays.size())];
      if (arr->rank() == 2) return kb.load(arr, {i, i});
      return kb.load(arr, {i});
    };
    if (depth <= 0 || rng.next_bool(0.3)) return leaf();
    const RVal lhs = expr(i, depth - 1);
    const RVal rhs = expr(i, depth - 1);
    switch (rng.next_below(6)) {
    case 0: return lhs + rhs;
    case 1: return lhs - rhs;
    case 2: return lhs * rhs;
    case 3: return lhs / (rhs + kb.real(9.0)); // divisor in [9.25, ...): safe
    case 4: return kb.sqrt(kb.abs(lhs)) + rhs;
    default: return kb.fmax(lhs, kb.fmin(rhs, kb.real(4.0)));
    }
  };

  Array* dst = arrays[0];
  const bool nested = rng.next_bool(0.5) && dst->rank() == 2;
  if (nested) {
    kb.for_loop("i", 0, n, [&](IVal i) {
      kb.for_loop("j", 0, n, [&](IVal j) {
        RVal v = expr(j, 2);
        kb.if_then(i < j, [&] { kb.store(v, dst, {i, j}); });
      });
    });
  } else {
    kb.for_loop("i", 0, n, [&](IVal i) {
      RVal v = expr(i, 3);
      if (dst->rank() == 2)
        kb.store(v, dst, {i, i});
      else
        kb.store(v, dst, {i});
    });
  }
  out.function = kb.finish();
  return out;
}

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, WholeStackInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    ir::Module m;
    GeneratedKernel k = generate(m, rng, trial);

    // Structural invariants.
    const ir::VerifyResult vr = ir::verify(*k.function);
    ASSERT_TRUE(vr.ok()) << vr.message();

    // Printer/parser round trip.
    const std::string text = ir::print_function(*k.function);
    ir::Module m2;
    const ir::ParseResult parsed = ir::parse_function(m2, text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(ir::print_function(*parsed.function), text);

    // Reference execution is finite.
    interp::ArrayStore ref = k.inputs;
    interp::TypeAssignment binary64;
    const interp::RunResult base = run_function(*k.function, binary64, ref);
    ASSERT_TRUE(base.ok) << base.error;
    for (const auto& [name, buf] : ref)
      for (double v : buf) ASSERT_TRUE(std::isfinite(v)) << name;

    // Precise tuning is functionally equivalent; Fast never slower than
    // Precise on the FPU-less machine; both allocators terminate.
    const core::PipelineResult precise = core::tune_kernel(
        *k.function, platform::stm32_table(), core::TuningConfig::precise());
    interp::ArrayStore out_p = k.inputs;
    const interp::RunResult run_p =
        run_function(*k.function, precise.allocation.assignment, out_p);
    ASSERT_TRUE(run_p.ok) << run_p.error;
    const std::string dst = k.function->arrays().front()->name();
    EXPECT_EQ(ref.at(dst), out_p.at(dst));

    const core::PipelineResult fast = core::tune_kernel(
        *k.function, platform::stm32_table(), core::TuningConfig::fast());
    interp::ArrayStore out_f = k.inputs;
    const interp::RunResult run_f =
        run_function(*k.function, fast.allocation.assignment, out_f);
    ASSERT_TRUE(run_f.ok) << run_f.error;
    const double t_p =
        platform::simulated_time(run_p.counters, platform::stm32_table());
    const double t_f =
        platform::simulated_time(run_f.counters, platform::stm32_table());
    EXPECT_LE(t_f, t_p * 1.001);

    // The greedy baseline also executes without incident.
    const vra::RangeMap ranges = vra::analyze_ranges(*k.function);
    const core::AllocationResult greedy =
        core::allocate_greedy(*k.function, ranges, core::TuningConfig());
    interp::ArrayStore out_g = k.inputs;
    EXPECT_TRUE(run_function(*k.function, greedy.assignment, out_g).ok);

    // Cast materialization keeps semantics.
    interp::TypeAssignment assignment = fast.allocation.assignment;
    core::materialize_casts(*k.function, assignment);
    ASSERT_TRUE(ir::verify(*k.function).ok());
    interp::ArrayStore out_m = k.inputs;
    const interp::RunResult run_m = run_function(*k.function, assignment, out_m);
    ASSERT_TRUE(run_m.ok) << run_m.error;
    EXPECT_EQ(out_f.at(dst), out_m.at(dst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(1, 6));

} // namespace
} // namespace luis
