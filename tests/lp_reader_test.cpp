#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/lp_reader.hpp"
#include "ilp/lp_writer.hpp"
#include "support/rng.hpp"

namespace luis::ilp {
namespace {

TEST(LpReader, ParsesHandWrittenModel) {
  const LpParseResult r = parse_lp(R"(Minimize
 obj: 2 x + 3 y - z
Subject To
 cap: x + 2 y <= 4
 floor: y - z >= -1
 tie: x = 1.5
Bounds
 0 <= x <= +inf
 -inf <= y <= 2
 0 <= z <= 10
General
 z
End
)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.model.num_variables(), 3u);
  EXPECT_EQ(r.model.num_constraints(), 3u);
  EXPECT_EQ(r.model.objective_direction(), Direction::Minimize);
  EXPECT_EQ(r.model.variables()[1].upper, 2.0);
  EXPECT_EQ(r.model.variables()[2].kind, VarKind::Integer);

  const Solution s = solve_milp(r.model);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  // x = 1.5 fixed; minimize 3y - z: y can go to -inf? y >= z - 1 >= -1,
  // y bounded below by floor with z = 0 -> y = -1, z maximal z <= y+1 = 9?
  // floor: y - z >= -1 -> z <= y + 1. Minimize 3y - z: y = -1, z <= 0 -> 0.
  EXPECT_NEAR(s.value(0), 1.5, 1e-9);
  EXPECT_NEAR(s.value(1), -1.0, 1e-6);
  EXPECT_NEAR(s.value(2), 0.0, 1e-6);
}

TEST(LpReader, RoundTripsThroughWriter) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    const int n = 6;
    std::vector<VarId> xs;
    for (int j = 0; j < n; ++j) {
      const bool integer = rng.next_bool(0.5);
      if (integer)
        xs.push_back(m.add_integer("v" + std::to_string(j), 0,
                                   static_cast<double>(rng.next_int(1, 5))));
      else
        xs.push_back(m.add_continuous("v" + std::to_string(j), 0.0,
                                      rng.next_double(1.0, 8.0)));
    }
    for (int r = 0; r < 4; ++r) {
      LinearExpr e;
      for (int j = 0; j < n; ++j)
        e.add(xs[static_cast<std::size_t>(j)],
              static_cast<double>(rng.next_int(-3, 3)));
      m.add_le(std::move(e), static_cast<double>(rng.next_int(2, 10)));
    }
    LinearExpr obj;
    for (int j = 0; j < n; ++j)
      obj.add(xs[static_cast<std::size_t>(j)],
              static_cast<double>(rng.next_int(-4, 4)));
    m.set_objective(Direction::Maximize, std::move(obj));

    const std::string text = to_lp_format(m);
    const LpParseResult parsed = parse_lp(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << text;
    ASSERT_EQ(parsed.model.num_variables(), m.num_variables());
    ASSERT_EQ(parsed.model.num_constraints(), m.num_constraints());

    // Same optimum through the round trip.
    const Solution a = solve_milp(m);
    const Solution b = solve_milp(parsed.model);
    ASSERT_EQ(a.status, b.status) << text;
    if (a.status == SolveStatus::Optimal)
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << text;

    // The LP format has no declaration section, so the parser's first-use
    // variable order may differ from the writer's id order; after one
    // round trip the order is canonical and printing is a fixed point.
    const std::string text2 = to_lp_format(parsed.model);
    const LpParseResult reparsed = parse_lp(text2);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error;
    EXPECT_EQ(to_lp_format(reparsed.model), text2);
  }
}

TEST(LpReader, HandlesNegativeAndFractionalCoefficients) {
  const LpParseResult r = parse_lp(R"(Maximize
 obj: - 0.5 a + 1.25 b
Subject To
 c0: - a + b <= 0.75
Bounds
 0 <= a <= 1
 0 <= b <= 1
End
)");
  ASSERT_TRUE(r.ok()) << r.error;
  const Solution s = solve_lp(r.model);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  // b = min(1, a + 0.75); maximize 1.25 b - 0.5 a -> a = 0.25, b = 1.
  EXPECT_NEAR(s.value(0), 0.25, 1e-6);
  EXPECT_NEAR(s.value(1), 1.0, 1e-6);
}

TEST(LpReader, ObjectiveConstantSurvivesWriteReadRoundTrip) {
  // The objective's constant term is part of the reported optimum (and of
  // presolve-lifted bounds); the writer must emit it or a dump/reload
  // cycle silently shifts every objective.
  Model m;
  const VarId x = m.add_integer("x", 0.0, 4.0);
  LinearExpr obj;
  obj.add(x, 2.0);
  obj.add_constant(7.5);
  m.set_objective(Direction::Maximize, std::move(obj));

  const LpParseResult r = parse_lp(to_lp_format(m));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_DOUBLE_EQ(r.model.objective().constant(), 7.5);

  const Solution original = solve_milp(m);
  const Solution reloaded = solve_milp(r.model);
  ASSERT_EQ(original.status, SolveStatus::Optimal);
  ASSERT_EQ(reloaded.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(original.objective, 15.5);
  EXPECT_DOUBLE_EQ(reloaded.objective, original.objective);

  // Negative constants round-trip through the "- c" spelling.
  Model neg;
  const VarId y = neg.add_continuous("y", 0.0, 1.0);
  neg.set_objective(Direction::Minimize,
                    LinearExpr().add(y, 1.0).add_constant(-3.25));
  const LpParseResult rn = parse_lp(to_lp_format(neg));
  ASSERT_TRUE(rn.ok()) << rn.error;
  EXPECT_DOUBLE_EQ(rn.model.objective().constant(), -3.25);
}

TEST(LpReader, RejectsMalformedInput) {
  EXPECT_FALSE(parse_lp("garbage before any section").ok());
  EXPECT_FALSE(parse_lp("Minimize\n obj: x\nSubject To\n c: x 4\nEnd\n").ok());
  EXPECT_FALSE(
      parse_lp("Minimize\n obj: x\nBounds\n x between 0 and 1\nEnd\n").ok());
}

TEST(LpReader, MalformedNumbersAreRejectedWithLocation) {
  // "3.5.2" used to be strtod'd as 3.5 with the trailing ".2" silently
  // discarded; now it is a hard error carrying line and column.
  {
    const LpParseResult r =
        parse_lp("Minimize\n obj: 3.5.2 x\nSubject To\n c: x <= 1\nEnd\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("column 7"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("3.5.2"), std::string::npos) << r.error;
  }
  // Malformed right-hand side of a constraint.
  {
    const LpParseResult r =
        parse_lp("Minimize\n obj: x\nSubject To\n c: x <= 1e+\nEnd\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("right-hand side"), std::string::npos) << r.error;
  }
  // Malformed numeric coefficient inside a constraint expression.
  {
    const LpParseResult r = parse_lp(
        "Minimize\n obj: x\nSubject To\n c: 2..0 x <= 4\nEnd\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("2..0"), std::string::npos) << r.error;
  }
  // Malformed bound values, each side.
  {
    const LpParseResult r =
        parse_lp("Minimize\n obj: x\nBounds\n 0.x <= x <= 1\nEnd\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("lower bound"), std::string::npos) << r.error;
  }
  {
    const LpParseResult r =
        parse_lp("Minimize\n obj: x\nBounds\n 0 <= x <= 1.0e\nEnd\n");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("upper bound"), std::string::npos) << r.error;
  }
  // Trailing junk after an otherwise valid bounds line.
  EXPECT_FALSE(
      parse_lp("Minimize\n obj: x\nBounds\n 0 <= x <= 1 junk\nEnd\n").ok());
  // Infinite bounds still parse.
  {
    const LpParseResult r = parse_lp(
        "Minimize\n obj: x\nBounds\n -inf <= x <= +inf\nEnd\n");
    ASSERT_TRUE(r.ok()) << r.error;
  }
}

} // namespace
} // namespace luis::ilp
