#include <gtest/gtest.h>

#include <cmath>

#include "numrep/fixed_point.hpp"
#include "support/rng.hpp"

namespace luis::numrep {
namespace {

TEST(FixedSpec, RangeAndResolution) {
  const FixedSpec q16{32, 16, true};
  EXPECT_DOUBLE_EQ(q16.resolution(), std::ldexp(1.0, -16));
  EXPECT_DOUBLE_EQ(q16.max_value(), (std::ldexp(1.0, 31) - 1) * std::ldexp(1.0, -16));
  EXPECT_DOUBLE_EQ(q16.min_value(), -std::ldexp(1.0, 15));

  const FixedSpec u8{8, 4, false};
  EXPECT_DOUBLE_EQ(u8.max_value(), 255.0 / 16.0);
  EXPECT_DOUBLE_EQ(u8.min_value(), 0.0);
  EXPECT_EQ(u8.name(), "ufix8.4");
}

TEST(FixedValue, ExactRoundTripOnGridPoints) {
  const FixedSpec spec{32, 12, true};
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(rng.next_int(-1000000, 1000000)) *
                     spec.resolution();
    EXPECT_DOUBLE_EQ(FixedValue::from_double(spec, x).to_double(), x);
  }
}

TEST(FixedValue, QuantizationErrorBoundedByHalfUlp) {
  const FixedSpec spec{32, 10, true};
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-1000.0, 1000.0);
    const double q = quantize_fixed(spec, x);
    EXPECT_LE(std::abs(q - x), spec.resolution() / 2 + 1e-15);
  }
}

TEST(FixedValue, SaturatesInsteadOfWrapping) {
  const FixedSpec spec{16, 8, true};
  EXPECT_DOUBLE_EQ(quantize_fixed(spec, 1e9), spec.max_value());
  EXPECT_DOUBLE_EQ(quantize_fixed(spec, -1e9), spec.min_value());
  EXPECT_DOUBLE_EQ(quantize_fixed(spec, HUGE_VAL), spec.max_value());

  const auto big = FixedValue::from_double(spec, 127.0);
  EXPECT_DOUBLE_EQ((big + big).to_double(), spec.max_value());
}

TEST(FixedValue, NanQuantizesToZero) {
  const FixedSpec spec{32, 16, true};
  EXPECT_DOUBLE_EQ(quantize_fixed(spec, std::nan("")), 0.0);
}

TEST(FixedValue, AddSubExactWhenInRange) {
  const FixedSpec spec{32, 16, true};
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double a = std::round(rng.next_double(-1000, 1000) * 65536) / 65536;
    const double b = std::round(rng.next_double(-1000, 1000) * 65536) / 65536;
    const auto fa = FixedValue::from_double(spec, a);
    const auto fb = FixedValue::from_double(spec, b);
    EXPECT_DOUBLE_EQ((fa + fb).to_double(), a + b);
    EXPECT_DOUBLE_EQ((fa - fb).to_double(), a - b);
  }
}

TEST(FixedValue, MulRoundsToNearest) {
  const FixedSpec spec{32, 16, true};
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double a = quantize_fixed(spec, rng.next_double(-100, 100));
    const double b = quantize_fixed(spec, rng.next_double(-100, 100));
    const double got = (FixedValue::from_double(spec, a) *
                        FixedValue::from_double(spec, b))
                           .to_double();
    EXPECT_LE(std::abs(got - a * b), spec.resolution() / 2 + 1e-12);
  }
}

TEST(FixedValue, DivRoundsToNearest) {
  const FixedSpec spec{32, 16, true};
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double a = quantize_fixed(spec, rng.next_double(-100, 100));
    double b = quantize_fixed(spec, rng.next_double(-100, 100));
    if (std::abs(b) < 1.0) b = std::copysign(1.0, b == 0 ? 1.0 : b);
    const double got = (FixedValue::from_double(spec, a) /
                        FixedValue::from_double(spec, b))
                           .to_double();
    EXPECT_LE(std::abs(got - a / b), spec.resolution() / 2 + 1e-12)
        << a << " / " << b;
  }
}

TEST(FixedValue, DivByZeroSaturates) {
  const FixedSpec spec{32, 16, true};
  const auto one = FixedValue::from_double(spec, 1.0);
  const auto minus = FixedValue::from_double(spec, -1.0);
  const auto zero = FixedValue::from_double(spec, 0.0);
  EXPECT_DOUBLE_EQ((one / zero).to_double(), spec.max_value());
  EXPECT_DOUBLE_EQ((minus / zero).to_double(), spec.min_value());
}

FixedValue zeroed(const FixedSpec& spec) { return FixedValue{spec, 0}; }

TEST(FixedValue, RemSignFollowsDividend) {
  const FixedSpec spec{32, 8, true};
  const auto a = FixedValue::from_double(spec, 7.5);
  const auto b = FixedValue::from_double(spec, 2.0);
  EXPECT_DOUBLE_EQ(fixed_rem(a, b).to_double(), 1.5);
  EXPECT_DOUBLE_EQ(fixed_rem(a.negate(), b).to_double(), -1.5);
  EXPECT_DOUBLE_EQ(fixed_rem(a, zeroed(spec)).to_double(), 0.0);
}

TEST(FixedValue, ShiftCastPreservesValueWhenWidening) {
  const FixedSpec narrow{32, 8, true};
  const FixedSpec wide{32, 20, true};
  const auto x = FixedValue::from_double(narrow, 13.25);
  EXPECT_DOUBLE_EQ(x.cast_to(wide).to_double(), 13.25);
}

TEST(FixedValue, ShiftCastRoundsWhenNarrowing) {
  const FixedSpec wide{32, 20, true};
  const FixedSpec narrow{32, 2, true};
  const auto x = FixedValue::from_double(wide, 1.3);
  EXPECT_DOUBLE_EQ(x.cast_to(narrow).to_double(), 1.25);
}

TEST(FixedValue, CastSaturatesWhenIntegerBitsShrink) {
  const FixedSpec src{32, 0, true};
  const FixedSpec dst{32, 24, true};
  const auto big = FixedValue::from_double(src, 1e6);
  EXPECT_DOUBLE_EQ(big.cast_to(dst).to_double(), dst.max_value());
}

TEST(FixedValue, NegateSaturatesAtIntMin) {
  const FixedSpec spec{16, 0, true};
  const FixedValue min_val{spec, -32768};
  EXPECT_DOUBLE_EQ(min_val.negate().to_double(), 32767.0);
}

// Property sweep: round trip through casts never increases error beyond the
// coarser resolution, across a grid of layouts.
class FixedCastSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FixedCastSweep, RoundTripErrorBounded) {
  const auto [f1, f2] = GetParam();
  const FixedSpec a{32, f1, true};
  const FixedSpec b{32, f2, true};
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double x = quantize_fixed(a, rng.next_double(-50, 50));
    const double rt = FixedValue::from_double(a, x).cast_to(b).cast_to(a).to_double();
    const double coarse = std::max(a.resolution(), b.resolution());
    EXPECT_LE(std::abs(rt - x), coarse) << a.name() << " <-> " << b.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, FixedCastSweep,
                         ::testing::Combine(::testing::Values(4, 8, 16, 24),
                                            ::testing::Values(4, 8, 16, 24)));

} // namespace
} // namespace luis::numrep
