#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/passes.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "polybench/polybench.hpp"

namespace luis::ir {
namespace {

TEST(ReplaceAllUses, RewritesEveryOperandSlot) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Instruction* x = b.add(f->const_real(1.0), f->const_real(2.0));
  Instruction* y = b.add(x, x);
  b.ret();
  EXPECT_EQ(replace_all_uses(*f, x, f->const_real(3.0)), 2);
  EXPECT_EQ(y->operand(0), f->const_real(3.0));
  EXPECT_EQ(y->operand(1), f->const_real(3.0));
  EXPECT_FALSE(has_uses(*f, x));
}

TEST(FoldConstants, FoldsRealArithmetic) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Array* out = f->add_array("out", {1});
  Instruction* sum = b.add(f->const_real(1.5), f->const_real(2.0));
  Instruction* prod = b.mul(sum, f->const_real(2.0));
  b.store(prod, out, {f->const_int(0)});
  b.ret();

  EXPECT_GT(run_default_pipeline(*f), 0);
  EXPECT_TRUE(verify(*f).ok()) << verify(*f).message();
  // The store's operand is now a literal 7.0 and the arithmetic is gone.
  const Instruction* store = entry->instructions().front().get();
  ASSERT_EQ(store->opcode(), Opcode::Store);
  ASSERT_EQ(store->operand(0)->kind(), Value::Kind::ConstReal);
  EXPECT_DOUBLE_EQ(static_cast<const ConstReal*>(store->operand(0))->value(), 7.0);
}

TEST(FoldConstants, FoldsIntChainsAndIntToReal) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Array* out = f->add_array("out", {4});
  Instruction* idx = b.iadd(f->const_int(1), f->const_int(2));
  Instruction* conv = b.int_to_real(b.imul(idx, f->const_int(2)));
  b.store(conv, out, {idx});
  b.ret();

  run_default_pipeline(*f);
  EXPECT_TRUE(verify(*f).ok());
  const Instruction* store = entry->instructions().front().get();
  ASSERT_EQ(store->opcode(), Opcode::Store);
  EXPECT_DOUBLE_EQ(static_cast<const ConstReal*>(store->operand(0))->value(), 6.0);
  // Store operands are [value, array, indices...]; the folded index.
  ASSERT_EQ(store->operand(2)->kind(), Value::Kind::ConstInt);
  EXPECT_EQ(static_cast<const ConstInt*>(store->operand(2))->value(), 3);
}

TEST(FoldConstants, SkipsIntegerDivisionByZero) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Array* out = f->add_array("out", {8});
  Instruction* div = b.idiv(f->const_int(4), f->const_int(0));
  b.store(b.int_to_real(div), out, {f->const_int(0)});
  b.ret();
  fold_constants(*f);
  // The idiv is still there (not folded into UB).
  EXPECT_EQ(entry->instructions().front()->opcode(), Opcode::IDiv);
}

TEST(DeadCodeElimination, RemovesUnusedChains) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Array* out = f->add_array("out", {1});
  Instruction* used = b.add(f->const_real(1.0), f->const_real(1.0));
  Instruction* dead1 = b.mul(used, f->const_real(2.0));
  b.sub(dead1, f->const_real(1.0)); // dead2, uses dead1
  b.store(used, out, {f->const_int(0)});
  b.ret();

  ASSERT_EQ(entry->instructions().size(), 5u);
  EXPECT_EQ(eliminate_dead_code(*f), 2); // dead2 then dead1
  EXPECT_EQ(entry->instructions().size(), 3u);
  EXPECT_TRUE(verify(*f).ok());
}

TEST(DeadCodeElimination, KeepsStoresAndTerminators) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Array* out = f->add_array("out", {1});
  b.store(f->const_real(1.0), out, {f->const_int(0)});
  b.ret();
  EXPECT_EQ(eliminate_dead_code(*f), 0);
  EXPECT_EQ(entry->instructions().size(), 2u);
}

TEST(SimplifyCfg, CollapsesKernelBuilderScaffolding) {
  Module m;
  KernelBuilder kb(m, "loop");
  Array* A = kb.array("A", {8}, 0.0, 8.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.real(1.0), A, {i});
  });
  Function* f = kb.finish();
  const std::size_t before = f->blocks().size();
  ASSERT_TRUE(verify(*f).ok());

  const int changes = simplify_cfg(*f);
  EXPECT_GT(changes, 0);
  EXPECT_LT(f->blocks().size(), before);
  EXPECT_TRUE(verify(*f).ok()) << verify(*f).message() << print_function(*f);
}

TEST(Passes, PipelinePreservesSemanticsOnPolybench) {
  // Optimize a few kernels and check execution is bit-identical.
  for (const char* name : {"gemm", "trisolv", "jacobi-2d", "nussinov"}) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m);

    interp::ArrayStore before = kernel.inputs;
    interp::TypeAssignment binary64;
    const interp::RunResult r1 = run_function(*kernel.function, binary64, before);
    ASSERT_TRUE(r1.ok) << r1.error;

    const int changes = run_default_pipeline(*kernel.function);
    EXPECT_GE(changes, 0);
    ASSERT_TRUE(verify(*kernel.function).ok())
        << name << ": " << verify(*kernel.function).message();

    interp::ArrayStore after = kernel.inputs;
    const interp::RunResult r2 = run_function(*kernel.function, binary64, after);
    ASSERT_TRUE(r2.ok) << r2.error;
    for (const std::string& out : kernel.outputs)
      EXPECT_EQ(before.at(out), after.at(out)) << name << "/" << out;
    // Simplification must not add work.
    EXPECT_LE(r2.steps, r1.steps) << name;
  }
}

TEST(Passes, PipelineShrinksBlockCountOnEveryKernel) {
  for (const std::string& name : polybench::kernel_names()) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m, false);
    const std::size_t blocks_before = kernel.function->blocks().size();
    run_default_pipeline(*kernel.function);
    EXPECT_TRUE(verify(*kernel.function).ok()) << name;
    EXPECT_LT(kernel.function->blocks().size(), blocks_before) << name;
  }
}

TEST(Passes, IdempotentAtFixpoint) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("atax", m, false);
  run_default_pipeline(*kernel.function);
  EXPECT_EQ(run_default_pipeline(*kernel.function), 0);
}

} // namespace
} // namespace luis::ir
