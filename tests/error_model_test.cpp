#include <gtest/gtest.h>

#include <cmath>

#include "core/error_model.hpp"
#include "core/pipeline.hpp"
#include "ir/kernel_builder.hpp"
#include "polybench/polybench.hpp"
#include "support/rng.hpp"

namespace luis::core {
namespace {

using interp::ArrayStore;
using interp::TypeAssignment;
using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using numrep::ConcreteType;

TEST(QuantizationError, PerFormatValues) {
  const vra::Interval unit{-1.0, 1.0};
  // binary64 is the reference: no error.
  EXPECT_EQ(quantization_error({numrep::kBinary64, 0}, unit), 0.0);
  // fix32 with f fractional bits: half a grid step.
  EXPECT_DOUBLE_EQ(quantization_error({numrep::kFixed32, 16}, unit),
                   std::ldexp(1.0, -17));
  // binary32 on [-1,1]: IEBW = 24 at |x|=1 -> 2^-24.
  EXPECT_DOUBLE_EQ(quantization_error({numrep::kBinary32, 0}, unit),
                   std::ldexp(1.0, -24));
  // Larger magnitudes have coarser float quanta.
  EXPECT_GT(quantization_error({numrep::kBinary32, 0}, {0.0, 1000.0}),
            quantization_error({numrep::kBinary32, 0}, unit));
}

TEST(ErrorModel, ZeroForAllBinary64) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  TypeAssignment binary64;
  const ErrorAnalysis ea =
      analyze_errors(*kernel.function, binary64, ranges);
  EXPECT_TRUE(ea.converged);
  for (const auto& [name, bound] : ea.array_bound)
    EXPECT_EQ(bound, 0.0) << name;
}

TEST(ErrorModel, SingleMulAccumulatesOperandErrors) {
  ir::Module m;
  KernelBuilder kb(m, "mul1");
  Array* A = kb.array("A", {1}, 0.0, 2.0);
  Array* B = kb.array("B", {1}, 0.0, 3.0);
  Array* C = kb.array("C", {1}, 0.0, 6.0);
  kb.store(kb.load(A, {kb.idx(0)}) * kb.load(B, {kb.idx(0)}), C, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);

  TypeAssignment fixed = TypeAssignment::uniform(*f, ConcreteType{numrep::kFixed32, 20});
  const ErrorAnalysis ea = analyze_errors(*f, fixed, ranges);
  ASSERT_TRUE(ea.converged);
  const double qa = std::ldexp(1.0, -21); // storage quanta of A and B
  const double qm = std::ldexp(1.0, -21); // mul result quantum
  // err(C) >= maxA*err(B) + maxB*err(A) + mul quantum + store quantum.
  const double floor_bound = 2.0 * qa + 3.0 * qa + qm;
  EXPECT_GE(ea.array_bound.at("C"), floor_bound);
  EXPECT_LT(ea.array_bound.at("C"), floor_bound * 4); // and not wildly above
}

TEST(ErrorModel, DivisionByZeroStraddlingRangeIsUnbounded) {
  ir::Module m;
  KernelBuilder kb(m, "div0");
  Array* A = kb.array("A", {1}, -1.0, 1.0);
  Array* B = kb.array("B", {1}, 1.0, 2.0);
  kb.store(kb.load(B, {kb.idx(0)}) / kb.load(A, {kb.idx(0)}), B, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment fixed = TypeAssignment::uniform(*f, ConcreteType{numrep::kFixed32, 16});
  ErrorAnalysisOptions opt;
  const ErrorAnalysis ea = analyze_errors(*f, fixed, ranges, opt);
  EXPECT_GE(ea.array_bound.at("B"), opt.infinity_threshold);
}

TEST(ErrorModel, AccumulationGrowsWithPassBudget) {
  // sum += A[i] over N: with a pass budget covering the N accumulation
  // steps, the bound scales with N (one quantum per step).
  auto bound_for = [](std::int64_t n) {
    ir::Module m;
    KernelBuilder kb(m, "acc");
    Array* A = kb.array("A", {n}, 0.0, 1.0);
    ir::ScalarCell sum = kb.scalar("sum", 0.0, static_cast<double>(n));
    kb.set(sum, kb.real(0.0));
    kb.for_loop("i", 0, n, [&](IVal i) {
      kb.set(sum, kb.get(sum) + kb.load(A, {i}));
    });
    ir::Function* f = kb.finish();
    const vra::RangeMap ranges = vra::analyze_ranges(*f);
    TypeAssignment fixed =
        TypeAssignment::uniform(*f, ConcreteType{numrep::kFixed32, 20});
    ErrorAnalysisOptions opt;
    opt.max_passes = static_cast<int>(n) + 8; // n accumulation steps
    const ErrorAnalysis ea = analyze_errors(*f, fixed, ranges, opt);
    // Accumulation never converges without trip counts: the budget is the
    // unroll depth.
    EXPECT_FALSE(ea.converged);
    return ea.array_bound.at("sum");
  };
  const double b8 = bound_for(8);
  const double b32 = bound_for(32);
  EXPECT_GT(b32, b8 * 2.0);
  EXPECT_LT(b32, b8 * 4.0);
}

// Soundness: the measured worst-case absolute output error of the tuned
// kernel never exceeds the static bound.
class ErrorSoundness : public ::testing::TestWithParam<std::string> {};

TEST_P(ErrorSoundness, PredictedBoundCoversMeasuredError) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel(GetParam(), m);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  const AllocationResult alloc = allocate_ilp(
      *kernel.function, ranges, platform::stm32_table(), TuningConfig::fast());

  const ErrorAnalysis ea =
      analyze_errors(*kernel.function, alloc.assignment, ranges);

  ArrayStore ref = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, ref).ok);
  ArrayStore tuned = kernel.inputs;
  ASSERT_TRUE(run_function(*kernel.function, alloc.assignment, tuned).ok);

  for (const std::string& out : kernel.outputs) {
    double measured = 0.0;
    for (std::size_t i = 0; i < ref.at(out).size(); ++i)
      measured = std::max(measured,
                          std::abs(ref.at(out)[i] - tuned.at(out)[i]));
    EXPECT_LE(measured, ea.array_bound.at(out) * (1.0 + 1e-9))
        << GetParam() << "/" << out;
  }
}

// Kernels with straightforward data flow (no divergent compares feeding
// selects whose arms differ beyond rounding).
INSTANTIATE_TEST_SUITE_P(Kernels, ErrorSoundness,
                         ::testing::Values("gemm", "2mm", "atax", "bicg",
                                           "mvt", "gesummv", "doitgen",
                                           "jacobi-1d", "jacobi-2d",
                                           "heat-3d", "syrk", "trmm"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

} // namespace
} // namespace luis::core
