// Exhaustive correctness proofs for every registered format narrow enough
// to enumerate: all 2^w encodings of each <= 8-bit encodable format are
// decoded, re-encoded, ordered, re-quantized, and checked against a
// brute-force nearest-neighbor resolution derived from the enumerated
// value set itself. Because the value set is *complete*, these are not
// spot checks — any disagreement between the codec, the rounding kernel,
// and the IEBW model is guaranteed to surface.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "numrep/formats.hpp"
#include "numrep/quantize.hpp"
#include "numrep/registry.hpp"
#include "support/rng.hpp"

namespace luis::numrep {
namespace {

/// One enumerated encoding of a format.
struct Entry {
  std::uint64_t bits;
  double value;
  std::int64_t key;
};

/// Every <= 8-bit encodable format: the registry catalog's narrow members
/// plus parametric spellings covering each class and encoding variant the
/// catalog alone would miss (signed/unsigned fixed, a 6-bit Ieee float, a
/// sub-byte fixed-posit, odd posit es).
std::vector<ConcreteType> formats_under_test() {
  std::vector<ConcreteType> out;
  const FormatRegistry& reg = FormatRegistry::instance();
  for (const NumericFormat& f : reg.formats())
    if (f.width() <= 8 && reg.ops(f.format_class()).encodable(f))
      out.push_back({f, f.is_fixed() ? 3 : 0});
  // The minifloat extras use exponents whose bit layout is exact (Ieee and
  // Fnuz need E = 2^(eb-1) - 1, FiniteOnly needs E = 2^(eb-1)); other E
  // values are legal IEBW descriptors but have no bit codec.
  for (const char* name : {"fix8", "ufix8", "posit6_1", "fposit7_0_2",
                           "float3_3", "float4_3_fnuz", "float3_4_finite"}) {
    const auto fmt = parse_format(name);
    if (!fmt) {
      ADD_FAILURE() << "parse_format rejected " << name;
      continue;
    }
    EXPECT_LE(fmt->width(), 8) << name;
    EXPECT_TRUE(reg.ops(fmt->format_class()).encodable(*fmt)) << name;
    out.push_back({*fmt, fmt->is_fixed() ? 3 : 0});
  }
  return out;
}

/// Decodes all 2^w patterns; NaN patterns are dropped (their count is
/// reported through `nan_patterns`).
std::vector<Entry> enumerate(const ConcreteType& t, int* nan_patterns) {
  const FormatClassOps& ops = format_ops(t);
  std::vector<Entry> out;
  *nan_patterns = 0;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << t.format.width());
       ++bits) {
    const double v = ops.decode(t, bits);
    if (std::isnan(v)) {
      ++*nan_patterns;
      continue;
    }
    out.push_back({bits, v, ops.ordering_key(t, bits)});
  }
  return out;
}

/// The finite values of the enumeration, ascending and deduplicated
/// (+0/-0 collapse to one entry).
std::vector<double> finite_values(const std::vector<Entry>& entries) {
  std::vector<double> vals;
  for (const Entry& e : entries)
    if (std::isfinite(e.value)) vals.push_back(e.value);
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

TEST(FormatExhaustive, DecodeEncodeRoundTrip) {
  for (const ConcreteType& t : formats_under_test()) {
    SCOPED_TRACE(t.name());
    const FormatClassOps& ops = format_ops(t);
    int nan_patterns = 0;
    const std::vector<Entry> entries = enumerate(t, &nan_patterns);
    ASSERT_FALSE(entries.empty());
    // Non-fixed formats all reserve at least one NaN pattern; fixed point
    // reserves none (every word is a lattice point).
    if (t.format.is_fixed()) {
      EXPECT_EQ(nan_patterns, 0);
    } else {
      EXPECT_GE(nan_patterns, 1);
    }
    for (const Entry& e : entries) {
      EXPECT_EQ(ops.encode(t, e.value), e.bits)
          << "bits=" << e.bits << " value=" << e.value;
      // The sign of a decoded zero must survive the round trip, so both
      // Ieee zero patterns re-encode to themselves (checked by the EQ
      // above); here make sure decode really produced the signed zero.
      if (e.value == 0.0 && !t.format.is_fixed() &&
          t.format.encoding() == FloatEncoding::Ieee && t.format.is_float()) {
        EXPECT_EQ(std::signbit(e.value),
                  (e.bits >> (t.format.width() - 1)) != 0);
      }
    }
  }
}

TEST(FormatExhaustive, OrderingKeyIsMonotone) {
  for (const ConcreteType& t : formats_under_test()) {
    SCOPED_TRACE(t.name());
    int nan_patterns = 0;
    std::vector<Entry> entries = enumerate(t, &nan_patterns);
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    for (std::size_t i = 1; i < entries.size(); ++i) {
      const Entry& lo = entries[i - 1];
      const Entry& hi = entries[i];
      EXPECT_LT(lo.key, hi.key) << "duplicate ordering keys";
      if (!(lo.value <= hi.value))
        ADD_FAILURE() << "decoded values not monotone in ordering_key: "
                      << "key " << lo.key << " -> " << lo.value << ", key "
                      << hi.key << " -> " << hi.value;
      // Distinct encodings may only decode equal when they are the +-0
      // pair.
      if (lo.value == hi.value) {
        EXPECT_EQ(lo.value, 0.0);
      }
    }
  }
}

TEST(FormatExhaustive, QuantizeIsIdempotentOnEveryEncoding) {
  for (const ConcreteType& t : formats_under_test()) {
    SCOPED_TRACE(t.name());
    int nan_patterns = 0;
    for (const Entry& e : enumerate(t, &nan_patterns)) {
      if (!std::isfinite(e.value)) continue;
      const double q = quantize(t, e.value);
      EXPECT_EQ(q, e.value) << "quantize moved the representable value "
                            << e.value << " to " << q;
    }
  }
}

// The IEBW model versus ground truth: for every representable value, the
// claimed resolution 2^-IEBW must sit within a binade of the distance to
// the enumerated nearest neighbors. The slack covers the definitional gap
// between "grid step" and "smallest representation-changing perturbation"
// (half a step under round-to-nearest) and posit regime boundaries, where
// the step below a value is up to useed/2 times finer than the step above.
TEST(FormatExhaustive, IebwMatchesEnumeratedNeighborGap) {
  for (const ConcreteType& t : formats_under_test()) {
    SCOPED_TRACE(t.name());
    const FormatClassOps& ops = format_ops(t);
    int nan_patterns = 0;
    const std::vector<double> vals = finite_values(enumerate(t, &nan_patterns));
    ASSERT_GE(vals.size(), 3u);
    // Posit/fixed-posit regimes change step by 2^(2^es); floats and fixed
    // by at most 2.
    const int es_slack =
        (t.format.is_posit() || t.format.is_fixed_posit())
            ? (1 << t.format.es())
            : 1;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const double v = vals[i];
      if (v == 0.0) continue;
      const double gap_down = i > 0 ? v - vals[i - 1] : HUGE_VAL;
      const double gap_up = i + 1 < vals.size() ? vals[i + 1] - v : HUGE_VAL;
      const double gap_min = std::min(gap_down, gap_up);
      const double gap_max =
          std::isinf(std::max(gap_down, gap_up)) ? gap_min
                                                 : std::max(gap_down, gap_up);
      const double eps = std::ldexp(1.0, -ops.iebw(t, v));
      EXPECT_GE(eps, gap_min / (2.0 * es_slack))
          << "IEBW overclaims resolution at v=" << v << ": eps=" << eps
          << " but the nearest neighbor is " << gap_min << " away";
      EXPECT_LE(eps, gap_max * 2.0)
          << "IEBW underclaims resolution at v=" << v << ": eps=" << eps
          << " but the farthest neighbor is only " << gap_max << " away";
    }
  }
}

// Rounding never invents values: whatever quantize returns for an
// arbitrary finite input must be an enumerated encoding's value (or the
// Ieee overflow infinity).
TEST(FormatExhaustive, QuantizeLandsOnEnumeratedValues) {
  Rng rng(20260808);
  for (const ConcreteType& t : formats_under_test()) {
    SCOPED_TRACE(t.name());
    int nan_patterns = 0;
    const std::vector<double> vals = finite_values(enumerate(t, &nan_patterns));
    for (int trial = 0; trial < 2000; ++trial) {
      const double mag = std::ldexp(rng.next_double(1.0, 2.0),
                                    static_cast<int>(rng.next_int(-20, 20)));
      const double x = rng.next_bool(0.5) ? mag : -mag;
      const double q = quantize(t, x);
      if (std::isinf(q)) {
        EXPECT_EQ(t.format.encoding(), FloatEncoding::Ieee);
        continue;
      }
      ASSERT_TRUE(std::isfinite(q)) << "quantize(" << x << ") -> " << q;
      EXPECT_TRUE(std::binary_search(vals.begin(), vals.end(), q))
          << "quantize(" << x << ") produced " << q
          << ", which is not a representable value";
    }
  }
}

// The catalog's two FP8 formats match the OCP spec values bit for bit:
// spot anchors pinning the enumeration to external ground truth.
TEST(FormatExhaustive, Fp8SpecAnchors) {
  const ConcreteType e4m3{kFp8E4M3, 0};
  const ConcreteType e5m2{kFp8E5M2, 0};
  const FormatClassOps& ops = format_ops(e4m3.format);
  EXPECT_EQ(ops.decode(e4m3, 0x7E), 448.0);       // S.1111.110, max finite
  EXPECT_TRUE(std::isnan(ops.decode(e4m3, 0x7F))); // S.1111.111 is NaN
  EXPECT_EQ(ops.decode(e4m3, 0x01), 0x1p-9);      // min subnormal
  EXPECT_EQ(ops.decode(e4m3, 0x08), 0x1p-6);      // min normal
  EXPECT_EQ(ops.decode(e5m2, 0x7B), 57344.0);     // max finite
  EXPECT_TRUE(std::isinf(ops.decode(e5m2, 0x7C))); // inf
  EXPECT_EQ(ops.decode(e5m2, 0x01), 0x1p-16);     // min subnormal
  const ConcreteType fnuz{kFp8E4M3Fnuz, 0};
  EXPECT_EQ(format_ops(fnuz.format).decode(fnuz, 0x7F), 240.0); // max finite
  EXPECT_TRUE(std::isnan(format_ops(fnuz.format).decode(fnuz, 0x80)));
  EXPECT_EQ(format_ops(fnuz.format).decode(fnuz, 0x01), 0x1p-10);
}

} // namespace
} // namespace luis::numrep
