// Tests of the literal (paper-exact) ILP formulation against the merged
// type-class formulation, plus the Err-term calibration knobs.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/type_classes.hpp"
#include "ir/kernel_builder.hpp"
#include "polybench/polybench.hpp"

namespace luis::core {
namespace {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;

ir::Function* build_saxpy(ir::Module& m) {
  KernelBuilder kb(m, "saxpy");
  Array* X = kb.array("X", {16}, -1.0, 1.0);
  Array* Y = kb.array("Y", {16}, -4.0, 4.0);
  RVal a = kb.real(2.5);
  kb.for_loop("i", 0, 16, [&](IVal i) {
    kb.store(a * kb.load(X, {i}) + kb.load(Y, {i}), Y, {i});
  });
  return kb.finish();
}

TEST(TypeClasses, RecordsSameTypeEdges) {
  ir::Module m;
  ir::Function* f = build_saxpy(m);
  const TypeClasses classes = compute_type_classes(*f);
  EXPECT_FALSE(classes.same_type_edges.empty());
  // Every edge connects two registers of the same class.
  for (const auto& [a, b] : classes.same_type_edges)
    EXPECT_EQ(classes.class_of.at(a), classes.class_of.at(b));
}

TEST(LiteralModel, BuildsMuchLargerModelThanMerged) {
  ir::Module m1, m2;
  ir::Function* f1 = build_saxpy(m1);
  ir::Function* f2 = build_saxpy(m2);
  const vra::RangeMap r1 = vra::analyze_ranges(*f1);
  const vra::RangeMap r2 = vra::analyze_ranges(*f2);

  TuningConfig merged = TuningConfig::balanced();
  TuningConfig literal = TuningConfig::balanced();
  literal.literal_model = true;

  const AllocationResult am =
      allocate_ilp(*f1, r1, platform::stm32_table(), merged);
  const AllocationResult al =
      allocate_ilp(*f2, r2, platform::stm32_table(), literal);
  EXPECT_GT(al.stats.model_variables, am.stats.model_variables * 3 / 2);
  EXPECT_GT(al.stats.model_constraints, am.stats.model_constraints * 3 / 2);
}

TEST(LiteralModel, AgreesWithMergedFormulation) {
  // The merging is a pure reformulation: both must pick the same formats.
  for (const char* kernel_name : {"gemm", "atax", "trisolv"}) {
    for (auto config_maker :
         {&TuningConfig::precise, &TuningConfig::balanced, &TuningConfig::fast}) {
      ir::Module m1, m2;
      polybench::BuiltKernel k1 = polybench::build_kernel(kernel_name, m1);
      polybench::BuiltKernel k2 = polybench::build_kernel(kernel_name, m2);
      const vra::RangeMap r1 = vra::analyze_ranges(*k1.function);
      const vra::RangeMap r2 = vra::analyze_ranges(*k2.function);

      TuningConfig merged = config_maker();
      TuningConfig literal = config_maker();
      literal.literal_model = true;

      const AllocationResult am =
          allocate_ilp(*k1.function, r1, platform::stm32_table(), merged);
      const AllocationResult al =
          allocate_ilp(*k2.function, r2, platform::stm32_table(), literal);

      ASSERT_EQ(am.stats.status, ilp::SolveStatus::Optimal);
      // Literal models are bigger; allow NodeLimit with an incumbent.
      ASSERT_TRUE(al.stats.status == ilp::SolveStatus::Optimal ||
                  al.stats.status == ilp::SolveStatus::NodeLimit);
      // Compare the format chosen for each array (frac bits may differ by
      // LP-degenerate ties; formats must match for a true reformulation).
      for (const auto& arr1 : k1.function->arrays()) {
        const ir::Array* arr2 = k2.function->array_by_name(arr1->name());
        EXPECT_EQ(am.assignment.of(arr1.get()).format,
                  al.assignment.of(arr2).format)
            << kernel_name << "/" << merged.name << " array " << arr1->name();
      }
      EXPECT_EQ(am.stats.instruction_mix, al.stats.instruction_mix)
          << kernel_name << "/" << merged.name;
    }
  }
}

TEST(ErrZeroFloor, ControlsTheBalancedKnifeEdge) {
  // On a kernel whose ranges straddle zero, Balanced flips between
  // binary64 and fixed point depending on where the best-case IEBW of the
  // floats is evaluated.
  ir::Module m1, m2;
  ir::Function* f1 = build_saxpy(m1);
  ir::Function* f2 = build_saxpy(m2);
  const vra::RangeMap r1 = vra::analyze_ranges(*f1);
  const vra::RangeMap r2 = vra::analyze_ranges(*f2);

  TuningConfig subnormal_reach = TuningConfig::balanced();
  subnormal_reach.err_zero_floor = 0.0; // binary64's IEBW becomes ~1075
  const AllocationResult deep =
      allocate_ilp(*f1, r1, platform::stm32_table(), subnormal_reach);
  EXPECT_EQ(deep.assignment.of(f1->array_by_name("Y")).format,
            numrep::kBinary64);

  TuningConfig coarse = TuningConfig::balanced();
  coarse.err_zero_floor = 0.25; // floats gain little over fixed point
  const AllocationResult shallow =
      allocate_ilp(*f2, r2, platform::stm32_table(), coarse);
  EXPECT_TRUE(shallow.assignment.of(f2->array_by_name("Y")).format.is_fixed());
}

TEST(GreedyAllocator, AlignsFracBitsWithinClass) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  const AllocationResult r =
      allocate_greedy(*kernel.function, ranges, TuningConfig());
  const TypeClasses classes = compute_type_classes(*kernel.function);
  for (const auto& members : classes.members) {
    const numrep::ConcreteType first = r.assignment.of(members.front());
    for (const ir::Value* v : members)
      EXPECT_EQ(r.assignment.of(v), first);
  }
}

} // namespace
} // namespace luis::core
