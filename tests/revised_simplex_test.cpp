// The sparse revised simplex core: warm starts, the dual-simplex
// re-optimization path, LU/eta numerical stability, and the differential
// guarantee against the dense tableau baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/revised_simplex.hpp"
#include "ilp/simplex.hpp"
#include "support/rng.hpp"

namespace luis::ilp {
namespace {

SimplexOptions revised_options() {
  SimplexOptions opt;
  opt.core = LpCore::Revised;
  return opt;
}

SimplexOptions dense_options() {
  SimplexOptions opt;
  opt.core = LpCore::Dense;
  return opt;
}

/// The allocator's canonical shape: binary-like columns in [0, 1] with SOS
/// rows. The dense tableau pays one extra row per bounded column here; the
/// revised core must handle it with plain bound flips.
Model sos_model() {
  Model m;
  std::vector<VarId> xs;
  for (int j = 0; j < 6; ++j)
    xs.push_back(m.add_continuous("x" + std::to_string(j), 0.0, 1.0));
  // Two SOS-style rows partitioning the variables.
  m.add_eq(LinearExpr().add(xs[0], 1).add(xs[1], 1).add(xs[2], 1), 1);
  m.add_eq(LinearExpr().add(xs[3], 1).add(xs[4], 1).add(xs[5], 1), 1);
  // A coupling budget.
  m.add_le(LinearExpr().add(xs[0], 3).add(xs[3], 2).add(xs[4], 5), 4);
  m.set_objective(Direction::Minimize, LinearExpr()
                                           .add(xs[0], 1.0)
                                           .add(xs[1], 2.0)
                                           .add(xs[2], 4.0)
                                           .add(xs[3], 1.5)
                                           .add(xs[4], 0.5)
                                           .add(xs[5], 3.0));
  return m;
}

TEST(RevisedSimplex, MatchesDenseOnBoundedSosModel) {
  const Model m = sos_model();
  const Solution r = solve_lp(m, revised_options());
  const Solution d = solve_lp(m, dense_options());
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  ASSERT_EQ(d.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, d.objective, 1e-7);
  EXPECT_TRUE(m.is_feasible(r.values, 1e-6));
}

TEST(RevisedSimplex, WarmStartedResolveMatchesColdSolve) {
  const Model m = sos_model();
  const SparseColumns cols = m.sparse_columns();
  const SimplexOptions opt = revised_options();

  Basis basis;
  const Solution root = solve_lp_revised(m, cols, opt, {}, &basis);
  ASSERT_EQ(root.status, SolveStatus::Optimal);
  ASSERT_TRUE(basis.fits(m.num_variables(), m.num_constraints()));

  // Branch like the B&B driver: tighten one variable and re-solve warm.
  for (const VarId branched : {VarId{0}, VarId{3}, VarId{4}}) {
    const BoundsOverride o{branched, 0.0, 0.0};
    Basis warm = basis;
    const Solution re = solve_lp_revised(m, cols, opt, std::span(&o, 1), &warm);
    const Solution cold = solve_lp_revised(m, cols, opt, std::span(&o, 1), nullptr);
    ASSERT_EQ(re.status, cold.status) << "var " << branched;
    if (re.status == SolveStatus::Optimal) {
      EXPECT_NEAR(re.objective, cold.objective, 1e-7) << "var " << branched;
      EXPECT_TRUE(m.is_feasible(re.values, 1e-6));
      // The whole point of warm starting: the re-solve is nearly free.
      EXPECT_LE(re.iterations, cold.iterations + 2) << "var " << branched;
    }
  }
}

TEST(RevisedSimplex, WarmStartFromGarbageBasisFallsBackToColdSolve) {
  const Model m = sos_model();
  const SparseColumns cols = m.sparse_columns();

  Basis garbage;
  garbage.status.assign(m.num_variables() + m.num_constraints(),
                        Basis::kAtLower);
  garbage.basic.assign(m.num_constraints(), 0); // duplicate, inconsistent
  const Solution s =
      solve_lp_revised(m, cols, revised_options(), {}, &garbage);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  const Solution cold = solve_lp(m, revised_options());
  EXPECT_NEAR(s.objective, cold.objective, 1e-9);
  // The rejected basis was replaced by the final (valid) one.
  EXPECT_TRUE(garbage.fits(m.num_variables(), m.num_constraints()));
}

TEST(RevisedSimplex, WarmStartAfterBoundRelaxationReoptimizes) {
  // Solve with a tight box, then relax it: the stale basis is still dual
  // feasible and the dual/primal cleanup must find the better optimum,
  // not return the stale one.
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 1.0);
  const VarId y = m.add_continuous("y", 0.0, 1.0);
  m.add_le(LinearExpr().add(x, 1).add(y, 1), 10.0);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 3).add(y, 2));
  const SparseColumns cols = m.sparse_columns();

  Basis basis;
  const BoundsOverride tight{x, 0.0, 0.25};
  const Solution first = solve_lp_revised(m, cols, revised_options(),
                                          std::span(&tight, 1), &basis);
  ASSERT_EQ(first.status, SolveStatus::Optimal);
  EXPECT_NEAR(first.objective, 3.0 * 0.25 + 2.0, 1e-7);

  const BoundsOverride relaxed{x, 0.0, 4.0};
  const Solution second = solve_lp_revised(m, cols, revised_options(),
                                           std::span(&relaxed, 1), &basis);
  ASSERT_EQ(second.status, SolveStatus::Optimal);
  EXPECT_NEAR(second.objective, 3.0 * 4.0 + 2.0, 1e-7);
}

TEST(RevisedSimplex, FrequentRefactorizationDoesNotChangeTheAnswer) {
  // refactor_interval = 1 forces a fresh LU after every pivot; the result
  // must match the long-eta-file run bit-for-bit in status and closely in
  // objective.
  const Model m = sos_model();
  SimplexOptions every_pivot = revised_options();
  every_pivot.refactor_interval = 1;
  SimplexOptions rare = revised_options();
  rare.refactor_interval = 1 << 20;

  const Solution a = solve_lp(m, every_pivot);
  const Solution b = solve_lp(m, rare);
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  ASSERT_EQ(b.status, SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(RevisedSimplex, IllConditionedModelStaysAccurate) {
  // Coefficients spanning ten orders of magnitude with nearly parallel
  // rows: eta-file drift would show up as a wrong objective or an
  // infeasible "solution". Compare against the dense core, which performs
  // full-tableau elimination with fresh arithmetic every pivot.
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 1e6);
  const VarId y = m.add_continuous("y", 0.0, 1e6);
  const VarId z = m.add_continuous("z", 0.0, 1e6);
  m.add_le(LinearExpr().add(x, 1e-5).add(y, 1.0).add(z, 1e5), 2e5);
  m.add_le(LinearExpr().add(x, 1.000001e-5).add(y, 1.0).add(z, 1e5), 2e5);
  m.add_le(LinearExpr().add(x, 1.0).add(y, 1e-4).add(z, 1.0), 3.0);
  m.add_ge(LinearExpr().add(x, 1.0).add(y, 1.0), 0.5);
  m.set_objective(Direction::Maximize,
                  LinearExpr().add(x, 1.0).add(y, 1e-3).add(z, 10.0));

  SimplexOptions opt = revised_options();
  opt.refactor_interval = 4; // stress the refactorization path too
  const Solution r = solve_lp(m, opt);
  const Solution d = solve_lp(m, dense_options());
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  ASSERT_EQ(d.status, SolveStatus::Optimal);
  EXPECT_TRUE(m.is_feasible(r.values, 1e-4));
  EXPECT_NEAR(r.objective / d.objective, 1.0, 1e-6);
}

TEST(RevisedSimplex, RandomDifferentialAgainstDenseCore) {
  // Random LPs across senses, bound shapes, and both objective
  // directions: the two cores must agree on status and optimum.
  Rng rng(17);
  int optimal = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.next_int(1, 6));
    for (int j = 0; j < n; ++j) {
      const double lo = rng.next_bool(0.2)
                            ? -kInfinity
                            : static_cast<double>(rng.next_int(-3, 1));
      const double hi =
          rng.next_bool(0.2)
              ? kInfinity
              : (std::isfinite(lo) ? lo : 0.0) +
                    static_cast<double>(rng.next_int(0, 5));
      m.add_continuous("x" + std::to_string(j), lo, hi);
    }
    const int rows = static_cast<int>(rng.next_int(0, 5));
    for (int i = 0; i < rows; ++i) {
      LinearExpr e;
      bool any = false;
      for (int j = 0; j < n; ++j) {
        if (rng.next_bool(0.4) || (j + 1 == n && !any)) {
          e.add(j, static_cast<double>(rng.next_int(1, 4)) *
                       (rng.next_bool(0.5) ? 1.0 : -1.0));
          any = true;
        }
      }
      const double rhs = static_cast<double>(rng.next_int(-6, 6));
      const std::uint64_t pick = rng.next_below(3);
      if (pick == 0)
        m.add_le(std::move(e), rhs);
      else if (pick == 1)
        m.add_ge(std::move(e), rhs);
      else
        m.add_eq(std::move(e), rhs);
    }
    LinearExpr obj;
    for (int j = 0; j < n; ++j)
      if (rng.next_bool(0.8))
        obj.add(j, static_cast<double>(rng.next_int(-3, 3)));
    m.set_objective(rng.next_bool(0.5) ? Direction::Minimize
                                       : Direction::Maximize,
                    std::move(obj));

    const Solution r = solve_lp(m, revised_options());
    const Solution d = solve_lp(m, dense_options());
    ASSERT_EQ(r.status, d.status) << "trial " << trial;
    if (r.status == SolveStatus::Optimal) {
      ++optimal;
      EXPECT_NEAR(r.objective, d.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(r.values, 1e-5)) << "trial " << trial;
    }
  }
  EXPECT_GT(optimal, 10); // the grid must actually exercise the solvers
}

TEST(RevisedSimplex, LpCoreDefaultRoundTrips) {
  const LpCore before = default_lp_core();
  set_default_lp_core(LpCore::Dense);
  EXPECT_EQ(default_lp_core(), LpCore::Dense);
  EXPECT_EQ(SimplexOptions{}.core, LpCore::Dense);
  set_default_lp_core(before);
  EXPECT_STREQ(to_string(LpCore::Revised), "revised");
  EXPECT_STREQ(to_string(LpCore::Dense), "dense");
}

} // namespace
} // namespace luis::ilp
