// The format registry's contracts: name <-> parse_format fixpoint over
// everything the registry can reach, diagnostics for malformed spellings,
// run-time pluggability of an extension class, and the end-to-end claim
// that a registered format is automatically an ILP candidate whose tuned
// assignment certifies finite error bounds.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ir/kernel_builder.hpp"
#include "numrep/iebw.hpp"
#include "numrep/quantize.hpp"
#include "numrep/registry.hpp"
#include "platform/optime.hpp"

namespace luis::numrep {
namespace {

TEST(FormatRegistry, CatalogNamesRoundTripThroughParse) {
  for (const NumericFormat& f : FormatRegistry::instance().formats()) {
    const std::string name = f.name();
    std::string error;
    const auto parsed = parse_format(name, &error);
    ASSERT_TRUE(parsed.has_value()) << name << ": " << error;
    EXPECT_EQ(*parsed, f) << name << " parsed to " << parsed->name();
  }
}

TEST(FormatRegistry, ParametricSpellingsRoundTripThroughName) {
  // Formats reachable only through the parametric parsers (not cataloged):
  // name() must produce a spelling parse_format maps back to the same
  // descriptor.
  for (const char* spelling :
       {"fix24", "ufix12", "fix2", "posit12_2", "posit3_0", "fposit12_1_4",
        "fposit3_0_1", "float5_6", "float_p7_E30", "float4_8_finite",
        "float4_7_fnuz", "float3_15_fnuz"}) {
    std::string error;
    const auto fmt = parse_format(spelling, &error);
    ASSERT_TRUE(fmt.has_value()) << spelling << ": " << error;
    const auto reparsed = parse_format(fmt->name(), &error);
    ASSERT_TRUE(reparsed.has_value()) << fmt->name() << ": " << error;
    EXPECT_EQ(*reparsed, *fmt) << spelling << " -> " << fmt->name();
  }
  // The canonical FP8 spellings are aliases of catalog formats.
  EXPECT_EQ(*parse_format("float4_8_finite"), kFp8E4M3);
  EXPECT_EQ(*parse_format("float4_7_fnuz"), kFp8E4M3Fnuz);
  EXPECT_EQ(*parse_format("float3_15"), kFp8E5M2);
}

TEST(FormatRegistry, AliasesResolve) {
  EXPECT_EQ(*parse_format("float"), kBinary32);
  EXPECT_EQ(*parse_format("double"), kBinary64);
  EXPECT_EQ(*parse_format("half"), kBinary16);
  EXPECT_EQ(*parse_format("fix"), kFixed32);
}

TEST(FormatRegistry, MalformedSpellingsAreRejectedWithDiagnostics) {
  // Recognized-but-malformed spellings must produce a parser-specific
  // diagnostic, not the generic unknown-format one.
  const struct {
    const char* spelling;
    const char* expect_substring;
  } kCases[] = {
      {"fix1", "width must be in [2, 64]"},
      {"fix65", "width must be in [2, 64]"},
      {"posit99_1", "posit width must be in [3, 32]"},
      {"posit8_9", "es in [0, 4]"},
      {"fposit8_0_9", "fixed-posit"},
      {"fposit4_2_3", "nonnegative fraction"},
      {"float1_1", "minifloat spelling"},
      {"float999_1", "minifloat spelling"},
  };
  for (const auto& c : kCases) {
    std::string error;
    const auto fmt = parse_format(c.spelling, &error);
    EXPECT_FALSE(fmt.has_value()) << c.spelling;
    EXPECT_NE(error.find(c.expect_substring), std::string::npos)
        << c.spelling << " diagnosed as: " << error;
  }
  // Unrecognized junk gets the catalog pointer.
  std::string error;
  EXPECT_FALSE(parse_format("no_such_format", &error).has_value());
  EXPECT_NE(error.find("luis formats"), std::string::npos) << error;
}

// --- Run-time pluggability: a from-scratch Ext0 class. ---
// An "integer grid" toy format: values are integers in [-100, 100]. The
// policy exists to prove the registration axis is open, not to be useful.

double grid_quantize(const ConcreteType&, double x) {
  if (std::isnan(x)) return x;
  const double r = std::nearbyint(x);
  return std::copysign(std::min(std::abs(r), 100.0), x);
}
int grid_iebw(const ConcreteType&, double) { return 0; }
double grid_max(const ConcreteType&) { return 100.0; }
double grid_minpos(const ConcreteType&) { return 1.0; }
bool grid_exec(const NumericFormat&) { return true; }
bool grid_feasible(const NumericFormat&, double lo, double hi) {
  return std::max(std::abs(lo), std::abs(hi)) <= 100.0;
}
std::string grid_cost(const NumericFormat&) { return "fix"; }
std::string grid_name(const NumericFormat&) { return "grid100"; }
bool grid_true(const NumericFormat&) { return true; }
bool grid_false(const NumericFormat&) { return false; }

TEST(FormatRegistry, ExtensionClassIsPluggable) {
  FormatRegistry& reg = FormatRegistry::instance();
  FormatClassOps ops;
  ops.class_label = "integer grid";
  ops.name = &grid_name;
  ops.quantize = &grid_quantize;
  ops.iebw = &grid_iebw;
  ops.max_value = &grid_max;
  ops.min_positive = &grid_minpos;
  ops.executable = &grid_exec;
  ops.feasible = &grid_feasible;
  ops.cost_class = &grid_cost;
  ops.saturates = &grid_true;
  ops.never_underflows = &grid_false;
  ops.eps_is_half_step = &grid_false;
  ops.encodable = &grid_false;
  reg.register_class(FormatClass::Ext0, ops);
  ASSERT_TRUE(reg.has_class(FormatClass::Ext0));

  const NumericFormat grid = NumericFormat::ext(FormatClass::Ext0, 8);
  reg.add_format(grid);

  // The format flows through every registry-backed entry point.
  EXPECT_EQ(grid.name(), "grid100");
  const auto parsed = parse_format("grid100");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, grid);
  bool in_catalog = false;
  for (const NumericFormat& f : standard_formats())
    if (f == grid) in_catalog = true;
  EXPECT_TRUE(in_catalog);

  const ConcreteType t{grid, 0};
  EXPECT_EQ(quantize(t, 2.4), 2.0);
  EXPECT_EQ(quantize(t, 2.5), 2.0); // nearbyint ties-to-even
  EXPECT_EQ(quantize(t, 1e9), 100.0);
  EXPECT_EQ(quantize(t, -1e9), -100.0);
  EXPECT_EQ(iebw_of_value(grid, 7.0), 0);
}

// --- End-to-end: registered formats become ILP candidates and certify. ---

ir::Function* build_dot_kernel(ir::Module& m) {
  ir::KernelBuilder kb(m, "dot");
  const std::int64_t n = 8;
  ir::Array* A = kb.array("A", {n}, 0.25, 4.0);
  ir::Array* B = kb.array("B", {n}, 0.25, 4.0);
  ir::Array* C = kb.array("C", {n}, 0.0, 16.0);
  kb.for_loop("i", 0, n, [&](ir::IVal i) {
    kb.store(kb.load(A, {i}) * kb.load(B, {i}), C, {i});
  });
  return kb.finish();
}

core::PipelineResult tune_with(ir::Function& f,
                               std::vector<NumericFormat> types, double w1,
                               double w2) {
  core::TuningConfig config;
  config.name = "test";
  config.types = std::move(types);
  config.w1 = w1;
  config.w2 = w2;
  core::PipelineOptions options;
  options.analyze_errors = true;
  return core::tune_kernel(f, platform::stm32_table(), config, options);
}

TEST(FormatRegistry, Fp8IsAnIlpCandidateWithFiniteCertificate) {
  ir::Module m;
  ir::Function* f = build_dot_kernel(m);
  // As the lone candidate, e4m3 must carry the full assignment, and the
  // certificate must stay finite (e4m3 saturates instead of overflowing).
  const auto result = tune_with(*f, {kFp8E4M3}, 1000.0, 1.0);
  EXPECT_EQ(result.allocation.stats.status, ilp::SolveStatus::Optimal);
  const auto& mix = result.allocation.stats.instruction_mix;
  ASSERT_TRUE(mix.count("fp8")) << "e4m3 was never assigned";
  EXPECT_GT(mix.at("fp8"), 0);
  for (const auto& [value, bound] : result.errors.errors.entries())
    EXPECT_TRUE(std::isfinite(bound)) << value->name();
}

TEST(FormatRegistry, MeasuredEmulationCostKeepsFp8FromWinningOnSpeed) {
  ir::Module m;
  ir::Function* f = build_dot_kernel(m);
  // With the measured software-emulation rows (optime.cpp kSoftEmulated)
  // an fp8 op costs ~32x a hardware float op, so a time-heavy objective
  // must keep everything in binary64. The old scaled model priced fp8
  // like hardware float and picked it here — a cost-model artifact, not
  // a property of the hardware.
  const auto result = tune_with(*f, {kFp8E4M3, kBinary64}, 1000.0, 1.0);
  EXPECT_EQ(result.allocation.stats.status, ilp::SolveStatus::Optimal);
  const auto& mix = result.allocation.stats.instruction_mix;
  EXPECT_FALSE(mix.count("fp8")) << "fp8 chosen despite 32x emulation cost";
  ASSERT_TRUE(mix.count("double"));
  EXPECT_GT(mix.at("double"), 0);
}

TEST(FormatRegistry, FixedPositTunesEndToEndWithFiniteBounds) {
  ir::Module m;
  ir::Function* f = build_dot_kernel(m);
  // fposit16_1_4 is feasible for the whole kernel (|values| <= 16 <<
  // maxpos) and, as the lone candidate, must carry the full assignment.
  const auto result = tune_with(*f, {kFixedPosit16}, 50.0, 50.0);
  EXPECT_EQ(result.allocation.stats.status, ilp::SolveStatus::Optimal);
  const auto& mix = result.allocation.stats.instruction_mix;
  ASSERT_TRUE(mix.count("fposit")) << "fixed-posit was never assigned";
  EXPECT_GT(mix.at("fposit"), 0);
  for (const auto& [value, bound] : result.errors.errors.entries())
    EXPECT_TRUE(std::isfinite(bound)) << value->name();
}

TEST(FormatRegistry, MultiPresetDrawsFromTheRegistry) {
  const core::TuningConfig multi = core::TuningConfig::multi();
  auto contains = [&](const NumericFormat& f) {
    for (const NumericFormat& t : multi.types)
      if (t == f) return true;
    return false;
  };
  EXPECT_TRUE(contains(kFp8E4M3));
  EXPECT_TRUE(contains(kFp8E5M2Fnuz));
  EXPECT_TRUE(contains(kFixedPosit8));
  EXPECT_TRUE(contains(kFixedPosit16));
  EXPECT_TRUE(contains(kBinary64));
  // Non-executable descriptors must not leak into the candidate set.
  EXPECT_FALSE(contains(kBinary128));
  EXPECT_FALSE(contains(kBinary256));
}

} // namespace
} // namespace luis::numrep
