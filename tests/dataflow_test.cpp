#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/dataflow.hpp"
#include "ir/kernel_builder.hpp"

namespace luis::analysis {
namespace {

using ir::Array;
using ir::Instruction;
using ir::IVal;
using ir::KernelBuilder;
using ir::Opcode;
using ir::ScalarType;

// A deliberately tiny domain for exercising the engine itself: each value
// carries a "depth" counter. Loads read their array, real arithmetic takes
// the max over Real operands, and stores join depth+1 into the array — so a
// loop that reads and rewrites the same array grows by one per sweep and
// must be stopped by widening.
struct DepthDomain {
  using Value = double;
  using State = ForwardDataflow<DepthDomain>::State;
  using Reader = ForwardDataflow<DepthDomain>::Reader;

  const ir::Function& f;
  double clamp;
  long widen_calls = 0;

  void seed(State& state) {
    for (const auto& arr : f.arrays()) state.emplace(arr.get(), 0.0);
  }
  std::optional<Value> constant(const ir::Value* v) const {
    return v->is_constant() ? std::optional<Value>(0.0) : std::nullopt;
  }
  void transfer(const Instruction* inst, const Reader& read,
                Effects<Value>& fx) {
    switch (inst->opcode()) {
      case Opcode::Load: {
        const auto v = read(inst->operand(0));
        if (!v) return fx.poison();
        fx.assign(inst, *v);
        return;
      }
      case Opcode::Store: {
        const auto v = read(inst->operand(0));
        if (!v) return fx.poison();
        fx.join(inst->operand(1), *v + 1.0);
        return;
      }
      default:
        if (inst->type() != ScalarType::Real) return;
        Value depth = 0.0;
        for (const ir::Value* op : inst->operands()) {
          const auto v = read(op);
          if (!v) return fx.poison();
          depth = std::max(depth, *v);
        }
        fx.assign(inst, depth);
        return;
    }
  }
  Value join(const Value& a, const Value& b) const { return std::max(a, b); }
  Value widen(const ir::Value*, const Value& old_v, const Value& grown, int) {
    ++widen_calls;
    return std::min(std::max(old_v, grown), clamp);
  }
  bool equal(const Value& a, const Value& b) const { return a == b; }
};

/// B[i] = A[i] over 8 elements — no join target ever re-grows.
ir::Function* build_copy(ir::Module& m) {
  KernelBuilder kb(m, "copy");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  Array* B = kb.array("B", {8}, 0.0, 1.0);
  kb.for_loop("i", 0, 8, [&](IVal i) { kb.store(kb.load(A, {i}), B, {i}); });
  return kb.finish();
}

/// B[i] = B[i] + A[i] — the store feeds its own load, growing every sweep.
ir::Function* build_feedback(ir::Module& m) {
  KernelBuilder kb(m, "feedback");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  Array* B = kb.array("B", {8}, 0.0, 8.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(B, {i}) + kb.load(A, {i}), B, {i});
  });
  return kb.finish();
}

TEST(Effects, RecordsAndPoisons) {
  Effects<double> fx;
  EXPECT_FALSE(fx.poisoned());
  fx.assign(nullptr, 1.0);
  fx.join(nullptr, 2.0);
  ASSERT_EQ(fx.effects().size(), 2u);
  EXPECT_EQ(fx.effects()[0].kind, UpdateKind::Assign);
  EXPECT_EQ(fx.effects()[1].kind, UpdateKind::Join);
  fx.poison();
  EXPECT_TRUE(fx.poisoned());
}

TEST(ForwardDataflow, ConvergesWithoutWideningOnAcyclicFlow) {
  ir::Module m;
  ir::Function* f = build_copy(m);
  DepthDomain domain{*f, 100.0};
  ForwardDataflow<DepthDomain> engine(*f, domain, DataflowOptions{});
  const DataflowStats stats = engine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.transfers, 0);
  EXPECT_EQ(stats.widenings, 0);
  EXPECT_EQ(domain.widen_calls, 0);
  // One store hop: depth 1 at B.
  EXPECT_EQ(engine.state().at(f->arrays()[1].get()), 1.0);
}

TEST(ForwardDataflow, GrowingJoinIsWidenedToTheClamp) {
  ir::Module m;
  ir::Function* f = build_feedback(m);
  // Growth is +1 per sweep, so the clamp must be reachable within the
  // pass budget for the widening to stabilize the state.
  DepthDomain domain{*f, 20.0};
  DataflowOptions options;
  options.widen_after = 3;
  options.max_passes = 50;
  ForwardDataflow<DepthDomain> engine(*f, domain, options);
  const DataflowStats stats = engine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.widenings, 0);
  EXPECT_GT(domain.widen_calls, 0);
  EXPECT_EQ(engine.state().at(f->arrays()[1].get()), 20.0);
}

// Regression: a widening operator that *absorbs* growth (returns the old
// value unchanged) must not re-mark the target's users — that kept the loop
// dirty forever and burned the whole pass budget without converging.
TEST(ForwardDataflow, AbsorbedWideningStillConverges) {
  ir::Module m;
  ir::Function* f = build_feedback(m);
  DepthDomain domain{*f, 5.0}; // clamp hit long before the pass cap
  DataflowOptions options;
  options.widen_after = 2;
  options.max_passes = 50;
  ForwardDataflow<DepthDomain> engine(*f, domain, options);
  const DataflowStats stats = engine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.passes, options.max_passes);
  EXPECT_EQ(engine.state().at(f->arrays()[1].get()), 5.0);
}

TEST(ForwardDataflow, PassCapReportsNonConvergence) {
  ir::Module m;
  ir::Function* f = build_feedback(m);
  DepthDomain domain{*f, 1e18};
  DataflowOptions options;
  options.widen_after = 1000; // never widen
  options.max_passes = 6;
  ForwardDataflow<DepthDomain> engine(*f, domain, options);
  const DataflowStats stats = engine.run();
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.passes, 6);
}

TEST(LoopInfo, FindsNestedLoopsInnermostFirst) {
  ir::Module m;
  KernelBuilder kb(m, "nest");
  Array* B = kb.array("B", {4, 4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.for_loop("j", 0, 4,
                [&](IVal j) { kb.store(kb.real(1.0), B, {i, j}); });
  });
  ir::Function* f = kb.finish();

  const LoopInfo info = LoopInfo::compute(*f);
  ASSERT_EQ(info.loops.size(), 2u);
  for (const Loop& loop : info.loops) {
    ASSERT_NE(loop.header, nullptr);
    EXPECT_TRUE(loop.contains(loop.header));
  }

  const ir::BasicBlock* store_block = nullptr;
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->opcode() == Opcode::Store) store_block = bb.get();
  ASSERT_NE(store_block, nullptr);

  const std::vector<std::size_t> nest = info.containing(store_block);
  ASSERT_EQ(nest.size(), 2u);
  const Loop& inner = info.loops[nest[0]];
  const Loop& outer = info.loops[nest[1]];
  EXPECT_LT(inner.blocks.size(), outer.blocks.size());
  EXPECT_TRUE(outer.contains(inner.header));
  EXPECT_FALSE(inner.contains(outer.header));

  // The entry block sits outside both loops.
  EXPECT_TRUE(info.containing(f->blocks().front().get()).empty());
}

} // namespace
} // namespace luis::analysis
