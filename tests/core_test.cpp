#include <gtest/gtest.h>

#include <cmath>

#include "core/cast_materializer.hpp"
#include "numrep/iebw.hpp"
#include "core/pipeline.hpp"
#include "core/type_classes.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/verifier.hpp"
#include "platform/cost_model.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

namespace luis::core {
namespace {

using interp::ArrayStore;
using interp::RunResult;
using interp::TypeAssignment;
using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;

/// Small gemm-like kernel: C = C * beta + alpha * A x B over 6x6 matrices.
ir::Function* build_small_gemm(ir::Module& m) {
  KernelBuilder kb(m, "small_gemm");
  const std::int64_t n = 6;
  Array* A = kb.array("A", {n, n}, -1.0, 1.0);
  Array* B = kb.array("B", {n, n}, -1.0, 1.0);
  Array* C = kb.array("C", {n, n}, -10.0, 10.0);
  RVal alpha = kb.real(1.5);
  RVal beta = kb.real(1.2);
  kb.for_loop("i", 0, n, [&](IVal i) {
    kb.for_loop("j", 0, n, [&](IVal j) {
      kb.store(kb.load(C, {i, j}) * beta, C, {i, j});
      kb.for_loop("k", 0, n, [&](IVal k) {
        RVal t = alpha * kb.load(A, {i, k}) * kb.load(B, {k, j});
        kb.store(kb.load(C, {i, j}) + t, C, {i, j});
      });
    });
  });
  return kb.finish();
}

void fill_inputs(ArrayStore& store, std::uint64_t seed) {
  Rng rng(seed);
  store["A"].resize(36);
  store["B"].resize(36);
  store["C"].resize(36);
  for (int i = 0; i < 36; ++i) {
    store["A"][static_cast<std::size_t>(i)] = rng.next_double(-1, 1);
    store["B"][static_cast<std::size_t>(i)] = rng.next_double(-1, 1);
    store["C"][static_cast<std::size_t>(i)] = rng.next_double(-2, 2);
  }
}

TEST(TypeClasses, LoadsMergeWithArraysAndStoresDoNot) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const TypeClasses classes = compute_type_classes(*f);

  // All arithmetic chains load from A, B, C, so A/B/C and the whole
  // multiply-accumulate merge into one class.
  const int ca = classes.class_of.at(f->array_by_name("A"));
  const int cb = classes.class_of.at(f->array_by_name("B"));
  const int cc = classes.class_of.at(f->array_by_name("C"));
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ca, cc);
  EXPECT_GE(classes.num_classes(), 1);
  EXPECT_FALSE(classes.uses.empty());
}

TEST(TypeClasses, StoreSeparatesProducerFromConsumerArray) {
  ir::Module m;
  KernelBuilder kb(m, "sep");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  Array* B = kb.array("B", {4}, 0.0, 2.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.load(A, {i}), B, {i});
  });
  ir::Function* f = kb.finish();
  const TypeClasses classes = compute_type_classes(*f);
  EXPECT_NE(classes.class_of.at(f->array_by_name("A")),
            classes.class_of.at(f->array_by_name("B")));
}

TEST(IlpAllocator, PreciseConfigChoosesBinary64) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r = allocate_ilp(*f, ranges, platform::stm32_table(),
                                          TuningConfig::precise());
  ASSERT_EQ(r.stats.status, ilp::SolveStatus::Optimal);
  // binary64 maximizes IEBW everywhere; W2 >> W1 makes it win.
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic()) {
        EXPECT_EQ(r.assignment.of(inst.get()).format, numrep::kBinary64);
      }
  EXPECT_EQ(r.stats.instruction_mix.count("double"), 1u);
}

TEST(IlpAllocator, FastConfigOnStm32ChoosesFixedPoint) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r =
      allocate_ilp(*f, ranges, platform::stm32_table(), TuningConfig::fast());
  ASSERT_TRUE(r.stats.status == ilp::SolveStatus::Optimal ||
              r.stats.status == ilp::SolveStatus::NodeLimit);
  // Stm32 has no FPU: with W1 >> W2 fixed point dominates.
  int fixed = 0, total = 0;
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic()) {
        ++total;
        if (r.assignment.of(inst.get()).format.is_fixed()) ++fixed;
      }
  EXPECT_EQ(fixed, total);
}

TEST(IlpAllocator, FracBitsRespectFixMax) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r =
      allocate_ilp(*f, ranges, platform::stm32_table(), TuningConfig::fast());
  for (const auto& [value, type] : r.assignment.entries()) {
    if (!type.format.is_fixed()) continue;
    const vra::Interval range = ranges.of(value);
    const int fixmax = numrep::fixed_point_max_frac(
        type.format.width(), type.format.is_signed(), range.lo, range.hi);
    EXPECT_LE(type.frac_bits, fixmax);
    EXPECT_GE(type.frac_bits, 0);
  }
}

TEST(IlpAllocator, ModelStatsArePopulated) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r = allocate_ilp(*f, ranges, platform::intel_table(),
                                          TuningConfig::balanced());
  EXPECT_GT(r.stats.num_registers, 10);
  EXPECT_GT(r.stats.num_uses, 10);
  EXPECT_GT(r.stats.model_variables, 4u);
  EXPECT_GT(r.stats.model_constraints, 2u);
  EXPECT_GE(r.stats.num_classes, 1);
  int mix_total = 0;
  for (const auto& [cls, count] : r.stats.instruction_mix) mix_total += count;
  // Every tunable arithmetic instruction appears in the mix.
  int arith = 0;
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic()) ++arith;
  EXPECT_EQ(mix_total, arith);
}

TEST(IlpAllocator, HugeRangesExcludeNarrowFixed) {
  ir::Module m;
  KernelBuilder kb(m, "wide");
  Array* A = kb.array("A", {4}, -1e12, 1e12);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.real(1.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r =
      allocate_ilp(*f, ranges, platform::stm32_table(), TuningConfig::fast());
  // 2^31 scaled by any nonnegative frac cannot reach 1e12: fixed point is
  // infeasible, so even the Fast preset must pick a float.
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic()) {
        EXPECT_TRUE(r.assignment.of(inst.get()).format.is_float());
      }
}

TEST(GreedyAllocator, PrivilegesFixedPoint) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r = allocate_greedy(*f, ranges, TuningConfig());
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic()) {
        EXPECT_TRUE(r.assignment.of(inst.get()).format.is_fixed());
      }
}

TEST(GreedyAllocator, FallsBackToDoubleOnHugeRanges) {
  ir::Module m;
  KernelBuilder kb(m, "wide");
  Array* A = kb.array("A", {4}, -1e12, 1e12);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.real(1.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const AllocationResult r = allocate_greedy(*f, ranges, TuningConfig());
  EXPECT_EQ(r.assignment.of(f->array_by_name("A")).format, numrep::kBinary64);
}

TEST(EndToEnd, PreciseHasZeroErrorAndFastIsFasterOnStm32) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);

  ArrayStore reference;
  fill_inputs(reference, 7);
  TypeAssignment baseline; // all binary64
  const RunResult base = run_function(*f, baseline, reference);
  ASSERT_TRUE(base.ok) << base.error;
  const double base_time =
      platform::simulated_time(base.counters, platform::stm32_table());

  const vra::RangeMap ranges = vra::analyze_ranges(*f);

  // Precise: identical outputs.
  {
    const AllocationResult r = allocate_ilp(*f, ranges, platform::stm32_table(),
                                            TuningConfig::precise());
    ArrayStore tuned;
    fill_inputs(tuned, 7);
    const RunResult run = run_function(*f, r.assignment, tuned);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_DOUBLE_EQ(
        mean_percentage_error(reference.at("C"), tuned.at("C")), 0.0);
  }

  // Fast: strictly faster simulated time on the FPU-less machine, small
  // but nonzero error allowed.
  {
    const AllocationResult r = allocate_ilp(*f, ranges, platform::stm32_table(),
                                            TuningConfig::fast());
    ArrayStore tuned;
    fill_inputs(tuned, 7);
    const RunResult run = run_function(*f, r.assignment, tuned);
    ASSERT_TRUE(run.ok) << run.error;
    const double tuned_time =
        platform::simulated_time(run.counters, platform::stm32_table());
    EXPECT_LT(tuned_time, base_time);
    EXPECT_LT(mean_percentage_error(reference.at("C"), tuned.at("C")), 1.0);
  }
}

TEST(EndToEnd, IlpAvoidsFixedPointOnIntel) {
  // The Intel table makes float adds cheaper than fixed ones; the Fast
  // preset should not blanket-convert to fixed point the way greedy does.
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);

  const AllocationResult ilp_r =
      allocate_ilp(*f, ranges, platform::intel_table(), TuningConfig::fast());
  const AllocationResult greedy_r = allocate_greedy(*f, ranges, TuningConfig());

  ArrayStore s1, s2;
  fill_inputs(s1, 3);
  fill_inputs(s2, 3);
  const RunResult run_ilp = run_function(*f, ilp_r.assignment, s1);
  const RunResult run_greedy = run_function(*f, greedy_r.assignment, s2);
  ASSERT_TRUE(run_ilp.ok && run_greedy.ok);
  const double t_ilp =
      platform::simulated_time(run_ilp.counters, platform::intel_table());
  const double t_greedy =
      platform::simulated_time(run_greedy.counters, platform::intel_table());
  EXPECT_LE(t_ilp, t_greedy * 1.001);
}

TEST(CastMaterializer, InsertsCastsAtBoundariesAndPreservesSemantics) {
  ir::Module m1, m2;
  ir::Function* f1 = build_small_gemm(m1);
  ir::Function* f2 = build_small_gemm(m2);

  const vra::RangeMap ranges = vra::analyze_ranges(*f1);
  // Force a boundary: arrays fixed, arithmetic double.
  TypeAssignment mixed;
  for (const auto& arr : f1->arrays())
    mixed.set(arr.get(), numrep::ConcreteType{numrep::kFixed32, 16});
  (void)ranges;

  // Run without materialization.
  ArrayStore before;
  fill_inputs(before, 11);
  const RunResult r1 = run_function(*f1, mixed, before);
  ASSERT_TRUE(r1.ok) << r1.error;

  // Same assignment on the twin function, casts materialized.
  TypeAssignment mixed2;
  for (const auto& arr : f2->arrays())
    mixed2.set(arr.get(), numrep::ConcreteType{numrep::kFixed32, 16});
  const int boundaries = count_type_boundaries(*f2, mixed2);
  const int inserted = materialize_casts(*f2, mixed2);
  EXPECT_EQ(boundaries, inserted);
  EXPECT_GT(inserted, 0);
  EXPECT_TRUE(ir::verify(*f2).ok()) << ir::verify(*f2).message();

  ArrayStore after;
  fill_inputs(after, 11);
  const RunResult r2 = run_function(*f2, mixed2, after);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(before.at("C"), after.at("C"));
}

TEST(CastMaterializer, MaterializationIsIdempotent) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  TypeAssignment mixed;
  for (const auto& arr : f->arrays())
    mixed.set(arr.get(), numrep::ConcreteType{numrep::kFixed32, 16});
  const int first = materialize_casts(*f, mixed);
  EXPECT_GT(first, 0);
  // Every boundary now carries a cast in the consumer's type: a second
  // sweep must find nothing left to fix.
  EXPECT_EQ(count_type_boundaries(*f, mixed), 0);
  EXPECT_EQ(materialize_casts(*f, mixed), 0);
  EXPECT_TRUE(ir::verify(*f).ok()) << ir::verify(*f).message();
}

TEST(CastMaterializer, CountMatchesInsertionOnAllocatorOutput) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  AllocationResult r = allocate_ilp(*f, ranges, platform::stm32_table(),
                                    TuningConfig::balanced());
  const int counted = count_type_boundaries(*f, r.assignment);
  const int inserted = materialize_casts(*f, r.assignment);
  EXPECT_EQ(counted, inserted);
  // The counting pass is pure: it must not have mutated the function.
  EXPECT_EQ(materialize_casts(*f, r.assignment), 0);
}

TEST(CastMaterializer, NoBoundariesNoCasts) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  TypeAssignment uniform = TypeAssignment::uniform(
      *f, numrep::ConcreteType{numrep::kBinary32, 0});
  EXPECT_EQ(count_type_boundaries(*f, uniform), 0);
  EXPECT_EQ(materialize_casts(*f, uniform), 0);
}

TEST(Pipeline, ReportsStageTimings) {
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  PipelineOptions opt;
  const PipelineResult r =
      tune_kernel(*f, platform::stm32_table(), TuningConfig::balanced(), opt);
  EXPECT_GE(r.timings.vra_seconds, 0.0);
  EXPECT_GT(r.timings.allocation_seconds, 0.0);
  EXPECT_GE(r.timings.total_seconds, r.timings.allocation_seconds);
  EXPECT_GT(r.ranges.size(), 0u);
  // The build/solve split is contained in the allocation stage.
  EXPECT_GE(r.timings.model_build_seconds, 0.0);
  EXPECT_GT(r.timings.solve_seconds, 0.0);
  EXPECT_LE(r.timings.model_build_seconds + r.timings.solve_seconds,
            r.timings.allocation_seconds + 1e-9);
}

TEST(Pipeline, StageSecondsSumToAtMostTotal) {
  // Every stage enabled: the stages are measured disjointly, so their sum
  // must not exceed the whole call. Before the timing fix, vra_seconds
  // started at t0 and silently included the IR-pass time, so the sum
  // could exceed total_seconds.
  ir::Module m;
  ir::Function* f = build_small_gemm(m);
  PipelineOptions opt;
  opt.optimize_ir = true;
  opt.materialize_casts = true;
  opt.lint = LintMode::Warn;
  const PipelineResult r =
      tune_kernel(*f, platform::stm32_table(), TuningConfig::balanced(), opt);
  EXPECT_GE(r.timings.ir_seconds, 0.0);
  EXPECT_GE(r.timings.vra_seconds, 0.0);
  EXPECT_GE(r.timings.materialize_seconds, 0.0);
  EXPECT_GE(r.timings.lint_seconds, 0.0);
  EXPECT_LE(r.timings.stage_sum(), r.timings.total_seconds + 1e-9);
}

TEST(Pipeline, GreedyIsCheaperToRunThanIlp) {
  ir::Module m1, m2;
  ir::Function* f1 = build_small_gemm(m1);
  ir::Function* f2 = build_small_gemm(m2);
  PipelineOptions ilp_opt;
  PipelineOptions greedy_opt;
  greedy_opt.allocator = AllocatorKind::Greedy;
  const PipelineResult ri =
      tune_kernel(*f1, platform::stm32_table(), TuningConfig::balanced(), ilp_opt);
  const PipelineResult rg =
      tune_kernel(*f2, platform::stm32_table(), TuningConfig::balanced(),
                  greedy_opt);
  // The ILP step dominates compilation overhead (Section V-B).
  EXPECT_GT(ri.timings.allocation_seconds, rg.timings.allocation_seconds);
}

TEST(Config, TableThreePresets) {
  EXPECT_EQ(TuningConfig::fast().w1, 1000.0);
  EXPECT_EQ(TuningConfig::fast().w2, 1.0);
  EXPECT_EQ(TuningConfig::balanced().w1, 50.0);
  EXPECT_EQ(TuningConfig::balanced().w2, 50.0);
  EXPECT_EQ(TuningConfig::precise().w1, 1.0);
  EXPECT_EQ(TuningConfig::precise().w2, 1000.0);
}

} // namespace
} // namespace luis::core
