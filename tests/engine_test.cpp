// Differential tests of the two execution engines (interp/engine.hpp).
//
// The VM is only useful if it is bit-identical to the reference
// interpreter — same outputs, same step counts, same cost counters, same
// diagnostics on every trap. These tests replay the regression seed
// corpus and a set of purpose-built edge kernels (division by zero,
// negative rem operands, non-finite intermediates, zero-iteration loops,
// step-limit traps) through both engines and compare everything.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "support/rng.hpp"

namespace luis::interp {
namespace {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;
using numrep::ConcreteType;

/// Deterministic inputs from the range annotations (same scheme as the
/// CLI's `run` verb), so every engine sees the same bits.
ArrayStore synth_inputs(const ir::Function& f, std::uint64_t seed) {
  ArrayStore store;
  Rng rng(seed);
  for (const auto& arr : f.arrays()) {
    double lo = 0.0, hi = 1.0;
    if (arr->range_annotation()) {
      lo = arr->range_annotation()->first;
      hi = arr->range_annotation()->second;
    }
    auto& buf = store[arr->name()];
    for (std::int64_t i = 0; i < arr->element_count(); ++i)
      buf.push_back(rng.next_double(lo, hi));
  }
  return store;
}

bool buffers_bit_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Runs `f` through both engines on copies of `inputs` and asserts that
/// every observable agrees bit for bit. Returns the reference result.
RunResult expect_engines_agree(const ir::Function& f,
                               const TypeAssignment& types,
                               const ArrayStore& inputs,
                               const RunOptions& options = {}) {
  const ReferenceEngine ref;
  const VmEngine vm;
  ArrayStore ref_store = inputs;
  ArrayStore vm_store = inputs;
  const RunResult a = ref.run(f, types, ref_store, options);
  const RunResult b = vm.run(f, types, vm_store, options);

  EXPECT_EQ(a.ok, b.ok) << "ref: " << a.error << " vm: " << b.error;
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.counters.ops, b.counters.ops);
  EXPECT_EQ(a.counters.non_real_ops, b.counters.non_real_ops);
  EXPECT_EQ(a.array_ranges, b.array_ranges);
  EXPECT_EQ(a.register_ranges, b.register_ranges);

  EXPECT_EQ(ref_store.size(), vm_store.size());
  for (const auto& [name, buf] : ref_store) {
    const auto it = vm_store.find(name);
    if (it == vm_store.end()) {
      ADD_FAILURE() << "array " << name << " missing from the vm store";
      continue;
    }
    EXPECT_TRUE(buffers_bit_equal(buf, it->second))
        << "array " << name << " differs between engines";
  }
  return a;
}

/// The assignments every differential case cycles through: the binary64
/// default plus one uniform type per format class (float, small float,
/// fixed, posit).
std::vector<TypeAssignment> assignment_grid(const ir::Function& f) {
  std::vector<TypeAssignment> grid;
  grid.emplace_back(); // empty = all binary64
  grid.push_back(TypeAssignment::uniform(f, {numrep::kBinary32, 0}));
  grid.push_back(TypeAssignment::uniform(f, {numrep::kBfloat16, 0}));
  grid.push_back(TypeAssignment::uniform(f, {numrep::kFixed32, 16}));
  grid.push_back(TypeAssignment::uniform(f, {numrep::kPosit16, 0}));
  return grid;
}

TEST(Engine, ParseNamesRoundTrip) {
  EXPECT_EQ(parse_engine("vm"), EngineKind::Vm);
  EXPECT_EQ(parse_engine("ref"), EngineKind::Reference);
  EXPECT_EQ(parse_engine("reference"), EngineKind::Reference);
  EXPECT_FALSE(parse_engine("jit").has_value());
  EXPECT_STREQ(to_string(EngineKind::Vm), "vm");
  EXPECT_STREQ(to_string(EngineKind::Reference), "ref");
  EXPECT_STREQ(make_engine(EngineKind::Vm)->name(), "vm");
  EXPECT_STREQ(make_engine(EngineKind::Reference)->name(), "ref");
}

TEST(Engine, CorpusSeedsBitIdenticalAcrossEngines) {
  int replayed = 0;
  for (int i = 1;; ++i) {
    const std::string path = std::string(LUIS_TEST_DATA_DIR) +
                             "/corpus/pipeline_seed_" + std::to_string(i) +
                             ".ir";
    std::ifstream is(path);
    if (!is.good()) break;
    std::ostringstream ss;
    ss << is.rdbuf();

    ir::Module m;
    const ir::ParseResult parsed = ir::parse_function(m, ss.str());
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.error;
    ASSERT_TRUE(ir::verify(*parsed.function).ok()) << path;
    const ArrayStore inputs =
        synth_inputs(*parsed.function, 0x5EED0000u + static_cast<unsigned>(i));
    for (const TypeAssignment& types : assignment_grid(*parsed.function))
      expect_engines_agree(*parsed.function, types, inputs);
    ++replayed;
  }
  EXPECT_GE(replayed, 5) << "seed corpus missing from tests/corpus";
}

TEST(Engine, RealDivisionByZeroAgrees) {
  ir::Module m;
  KernelBuilder kb(m, "divzero");
  Array* A = kb.array("A", {4}, -2.0, 2.0);
  Array* B = kb.array("B", {4}, -100.0, 100.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.div(kb.load(A, {i}), kb.real(0.0)), B, {i});
  });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  ArrayStore inputs;
  inputs["A"] = {1.0, -1.0, 0.0, 2.5}; // inf, -inf, nan, inf
  for (const TypeAssignment& types : assignment_grid(*f)) {
    const RunResult r = expect_engines_agree(*f, types, inputs);
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(Engine, IntegerDivisionAndRemByZeroAgree) {
  // idiv/irem by zero are defined as 0 by the interpreter contract; both
  // engines must produce that, not a trap.
  const char* text = R"(func @intzero {
  array @A[2] range [0.0, 8.0]
entry:
  %0 = idiv 7, 0
  %1 = irem 7, 0
  %2 = inttoreal %0
  %3 = inttoreal %1
  store %2, @A[0]
  store %3, @A[1]
  ret
})";
  ir::Module m;
  const ir::ParseResult parsed = ir::parse_function(m, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const RunResult r =
      expect_engines_agree(*parsed.function, {}, synth_inputs(*parsed.function, 1));
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(Engine, RemWithNegativeOperandsAgrees) {
  ir::Module m;
  KernelBuilder kb(m, "negrem");
  Array* B = kb.array("B", {4}, -10.0, 10.0);
  kb.store(kb.rem(kb.real(-7.5), kb.real(2.0)), B, {kb.idx(0)});
  kb.store(kb.rem(kb.real(7.5), kb.real(-2.0)), B, {kb.idx(1)});
  kb.store(kb.rem(kb.real(-7.5), kb.real(-2.0)), B, {kb.idx(2)});
  kb.store(kb.rem(kb.real(-1.0), kb.real(0.0)), B, {kb.idx(3)}); // nan
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  for (const TypeAssignment& types : assignment_grid(*f)) {
    const RunResult r = expect_engines_agree(*f, types, synth_inputs(*f, 2));
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(Engine, NonFiniteIntermediatesAgreeIncludingRanges) {
  ir::Module m;
  KernelBuilder kb(m, "nonfinite");
  Array* B = kb.array("B", {3}, -1e30, 1e30);
  kb.store(kb.exp(kb.real(800.0)), B, {kb.idx(0)});          // inf
  kb.store(kb.sqrt(kb.real(-4.0)), B, {kb.idx(1)});          // nan
  kb.store(kb.sub(kb.exp(kb.real(800.0)), kb.exp(kb.real(800.0))), B,
           {kb.idx(2)});                                     // inf - inf = nan
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  RunOptions opt;
  opt.track_array_ranges = true;
  opt.track_register_ranges = true;
  const RunResult r = expect_engines_agree(*f, {}, synth_inputs(*f, 3), opt);
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(Engine, ZeroIterationLoopAgrees) {
  ir::Module m;
  KernelBuilder kb(m, "emptyloop");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  ScalarCell acc = kb.scalar("acc", 0.0, 8.0);
  kb.set(acc, kb.real(0.0));
  kb.for_loop("i", 0, 0, [&](IVal i) {
    kb.set(acc, kb.get(acc) + kb.load(A, {i}));
  });
  kb.store(kb.get(acc), A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  for (const TypeAssignment& types : assignment_grid(*f)) {
    const RunResult r = expect_engines_agree(*f, types, synth_inputs(*f, 4));
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(Engine, StepLimitTrapAgrees) {
  ir::Module m;
  KernelBuilder kb(m, "long");
  Array* A = kb.array("A", {1}, 0.0, 1.0);
  kb.for_loop("i", 0, 1000000,
              [&](IVal) { kb.store(kb.real(1.0), A, {kb.idx(0)}); });
  ir::Function* f = kb.finish();
  RunOptions opt;
  opt.max_steps = 1000;
  const RunResult r = expect_engines_agree(*f, {}, synth_inputs(*f, 5), opt);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("step limit"), std::string::npos);
  // Counters are only materialized on a successful ret.
  EXPECT_TRUE(r.counters.ops.empty());
}

TEST(Engine, ExactFixedArithmeticAgrees) {
  ir::Module m;
  KernelBuilder kb(m, "exactfix");
  Array* A = kb.array("A", {8}, 0.25, 4.0);
  Array* B = kb.array("B", {8}, -32.0, 32.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    RVal x = kb.load(A, {i});
    kb.store(kb.div(kb.mul(x, x) + x - kb.real(0.5), kb.real(3.0)), B, {i});
  });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  RunOptions opt;
  opt.exact_fixed_arithmetic = true;
  const ArrayStore inputs = synth_inputs(*f, 6);
  const TypeAssignment fix = TypeAssignment::uniform(*f, {numrep::kFixed32, 12});
  const RunResult r = expect_engines_agree(*f, fix, inputs, opt);
  ASSERT_TRUE(r.ok) << r.error;
}

TEST(Engine, ProgramCacheHitsOnSecondRun) {
  ir::Module m;
  KernelBuilder kb(m, "cached");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(A, {i}) * kb.real(2.0), A, {i});
  });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());

  ProgramCache cache;
  const VmEngine vm(&cache);
  const ReferenceEngine ref;
  const ArrayStore inputs = synth_inputs(*f, 7);

  ArrayStore s1 = inputs, s2 = inputs, s3 = inputs;
  ASSERT_TRUE(vm.run(*f, {}, s1).ok);
  ASSERT_TRUE(vm.run(*f, {}, s2).ok);
  EXPECT_EQ(cache.stats().lookups, 2);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(buffers_bit_equal(s1.at("A"), s2.at("A")));

  // A different assignment is a different program.
  const TypeAssignment b32 = TypeAssignment::uniform(*f, {numrep::kBinary32, 0});
  ASSERT_TRUE(vm.run(*f, b32, s3).ok);
  EXPECT_EQ(cache.stats().insertions, 2);
  EXPECT_EQ(cache.size(), 2u);

  // Cached replay still matches the reference interpreter bit for bit.
  ArrayStore sr = inputs, sv = inputs;
  ASSERT_TRUE(ref.run(*f, b32, sr).ok);
  ASSERT_TRUE(vm.run(*f, b32, sv).ok);
  EXPECT_TRUE(buffers_bit_equal(sr.at("A"), sv.at("A")));

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups, 0);
}

TEST(Engine, CacheKeySurvivesReparse) {
  // Sweep jobs re-parse the same kernel text into private modules; the
  // cache key must not depend on object identity.
  const char* text = R"(func @twin {
  array @A[4] range [0.0, 1.0]
entry:
  %0 = load @A[0]
  %1 = mul %0, %0
  store %1, @A[1]
  ret
})";
  ir::Module m1, m2;
  const ir::ParseResult p1 = ir::parse_function(m1, text);
  const ir::ParseResult p2 = ir::parse_function(m2, text);
  ASSERT_TRUE(p1.ok() && p2.ok());
  ProgramCache cache;
  const VmEngine vm(&cache);
  ArrayStore s1 = synth_inputs(*p1.function, 8);
  ArrayStore s2 = s1;
  ASSERT_TRUE(vm.run(*p1.function, {}, s1).ok);
  ASSERT_TRUE(vm.run(*p2.function, {}, s2).ok);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().insertions, 1);
}

// ---- Batched execution (interp/batch.hpp, VmEngine::run_batch) ----------

/// Runs the lane set through VmEngine::run_batch — once with SWAR packing
/// and once without — and asserts every lane is bit-identical to a scalar
/// ReferenceEngine run of that assignment: outputs, steps, counters,
/// ranges, and trap diagnostics.
void expect_batch_matches_reference(const ir::Function& f,
                                    const std::vector<TypeAssignment>& lanes,
                                    const ArrayStore& inputs,
                                    const RunOptions& options = {}) {
  const ReferenceEngine ref;
  ProgramCache cache;
  const VmEngine vm(&cache);
  for (const bool swar : {true, false}) {
    std::vector<ArrayStore> stores(lanes.size(), inputs);
    std::vector<BatchRequest> reqs(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i)
      reqs[i] = {&lanes[i], &stores[i], nullptr};
    BatchRunOptions bopt;
    bopt.run = options;
    bopt.swar = swar;
    const std::vector<RunResult> got = vm.run_batch(f, reqs, bopt);
    ASSERT_EQ(got.size(), lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      ArrayStore ref_store = inputs;
      const RunResult want = ref.run(f, lanes[i], ref_store, options);
      EXPECT_EQ(want.ok, got[i].ok)
          << "lane " << i << " swar=" << swar << " ref: " << want.error
          << " batch: " << got[i].error;
      EXPECT_EQ(want.error, got[i].error) << "lane " << i;
      EXPECT_EQ(want.steps, got[i].steps) << "lane " << i;
      EXPECT_EQ(want.counters.ops, got[i].counters.ops) << "lane " << i;
      EXPECT_EQ(want.counters.non_real_ops, got[i].counters.non_real_ops)
          << "lane " << i;
      EXPECT_EQ(want.array_ranges, got[i].array_ranges) << "lane " << i;
      EXPECT_EQ(want.register_ranges, got[i].register_ranges) << "lane " << i;
      for (const auto& [name, buf] : ref_store)
        EXPECT_TRUE(buffers_bit_equal(buf, stores[i].at(name)))
            << "lane " << i << " swar=" << swar << " array " << name;
    }
  }
}

TEST(EngineBatch, CorpusSeedsMatchReferencePerLane) {
  int replayed = 0;
  for (int i = 1;; ++i) {
    const std::string path = std::string(LUIS_TEST_DATA_DIR) +
                             "/corpus/pipeline_seed_" + std::to_string(i) +
                             ".ir";
    std::ifstream is(path);
    if (!is.good()) break;
    std::ostringstream ss;
    ss << is.rdbuf();

    ir::Module m;
    const ir::ParseResult parsed = ir::parse_function(m, ss.str());
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.error;
    const ArrayStore inputs =
        synth_inputs(*parsed.function, 0xBA7C0000u + static_cast<unsigned>(i));
    RunOptions opt;
    opt.track_array_ranges = true;
    opt.track_register_ranges = true;
    expect_batch_matches_reference(*parsed.function,
                                   assignment_grid(*parsed.function), inputs,
                                   opt);
    ++replayed;
  }
  EXPECT_GE(replayed, 5) << "seed corpus missing from tests/corpus";
}

TEST(EngineBatch, LaneCountOneBitIdenticalWithScalarVm) {
  ir::Module m;
  KernelBuilder kb(m, "one_lane");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(A, {i}) * kb.real(3.0) + kb.real(0.125), A, {i});
  });
  ir::Function* f = kb.finish();
  const ArrayStore inputs = synth_inputs(*f, 11);
  const TypeAssignment fix = TypeAssignment::uniform(*f, {numrep::kFixed32, 12});

  const VmEngine vm;
  ArrayStore scalar_store = inputs;
  const RunResult want = vm.run(*f, fix, scalar_store, {});

  ArrayStore batch_store = inputs;
  const std::vector<BatchRequest> reqs = {{&fix, &batch_store, nullptr}};
  const std::vector<RunResult> got = vm.run_batch(*f, reqs, {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].ok);
  EXPECT_EQ(want.steps, got[0].steps);
  EXPECT_EQ(want.counters.ops, got[0].counters.ops);
  EXPECT_EQ(want.counters.non_real_ops, got[0].counters.non_real_ops);
  EXPECT_TRUE(buffers_bit_equal(scalar_store.at("A"), batch_store.at("A")));
}

TEST(EngineBatch, TrapRetiresOneLaneWhileOthersFinish) {
  // acc += 0.001 until acc >= 1.0. In a coarse fixed format the increment
  // quantizes to zero, so that lane spins until the step limit while the
  // float lanes terminate normally — the trapped lane must retire with
  // the scalar VM's exact diagnostics and step count without disturbing
  // the survivors.
  const char* text = R"(func @stall {
  array @A[1] range [0.0, 4.0]
entry:
  br loop
loop:
  %0 = phi real [ 0.0, entry ], [ %1, loop ]
  %1 = add %0, 0.001
  %2 = fcmp lt %1, 1.0
  condbr %2, loop, done
done:
  store %1, @A[0]
  ret
})";
  ir::Module m;
  const ir::ParseResult parsed = ir::parse_function(m, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ir::Function& f = *parsed.function;

  const std::vector<TypeAssignment> lanes = {
      {}, // binary64: terminates
      TypeAssignment::uniform(f, {numrep::kFixed32, 6}), // 0.001 -> 0: spins
      TypeAssignment::uniform(f, {numrep::kBinary32, 0}), // terminates
  };
  RunOptions opt;
  opt.max_steps = 50'000;
  const ArrayStore inputs = synth_inputs(f, 12);
  expect_batch_matches_reference(f, lanes, inputs, opt);

  // And the expected shape, explicitly: lane 1 trapped, lanes 0/2 ran on.
  const VmEngine vm;
  std::vector<ArrayStore> stores(lanes.size(), inputs);
  std::vector<BatchRequest> reqs(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    reqs[i] = {&lanes[i], &stores[i], nullptr};
  BatchRunOptions bopt;
  bopt.run = opt;
  const std::vector<RunResult> got = vm.run_batch(f, reqs, bopt);
  EXPECT_TRUE(got[0].ok);
  EXPECT_FALSE(got[1].ok);
  EXPECT_NE(got[1].error.find("step limit"), std::string::npos);
  EXPECT_EQ(got[1].steps, opt.max_steps + 1);
  EXPECT_TRUE(got[2].ok);
  EXPECT_LT(got[0].steps, opt.max_steps);
}

TEST(EngineBatch, PhiBatchSimultaneousReadAcrossLanes) {
  // A swap loop: both phis of an edge must read their sources before
  // either destination is written, in every lane. An odd trip count
  // leaves the values exchanged; per-lane quantization makes each lane's
  // pair distinct.
  const char* text = R"(func @swap {
  array @A[2] range [0.0, 4.0]
entry:
  %0 = load @A[0]
  %1 = load @A[1]
  br loop
loop:
  %2 = phi int [ 0, entry ], [ %5, loop ]
  %3 = phi real [ %0, entry ], [ %4, loop ]
  %4 = phi real [ %1, entry ], [ %3, loop ]
  %5 = iadd %2, 1
  %6 = icmp lt %5, 6
  condbr %6, loop, done
done:
  store %3, @A[0]
  store %4, @A[1]
  ret
})";
  ir::Module m;
  const ir::ParseResult parsed = ir::parse_function(m, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ir::Function& f = *parsed.function;
  ArrayStore inputs;
  inputs["A"] = {0.625, 2.75};
  expect_batch_matches_reference(f, assignment_grid(f), inputs);

  // The swap actually happened (odd number of exchanges).
  const VmEngine vm;
  ArrayStore store = inputs;
  TypeAssignment none;
  const std::vector<BatchRequest> reqs = {{&none, &store, nullptr}};
  ASSERT_TRUE(vm.run_batch(f, reqs, {}).at(0).ok);
  EXPECT_EQ(store.at("A")[0], 2.75);
  EXPECT_EQ(store.at("A")[1], 0.625);
}

TEST(EngineBatch, MixedSwarAndScalarLaneSets) {
  // Lane set mixing every SWAR field width (8 lanes/word at w<=6, 4 at
  // w<=14, 2 at w<=16) with float and posit lanes that can never pack,
  // plus repeated specs so maximal runs form and split mid-set.
  ir::Module m;
  KernelBuilder kb(m, "mixed");
  Array* A = kb.array("A", {16}, 0.0, 1.0);
  Array* B = kb.array("B", {16}, -4.0, 4.0);
  ScalarCell acc = kb.scalar("acc", -8.0, 8.0);
  kb.set(acc, kb.real(0.0));
  kb.for_loop("i", 0, 16, [&](IVal i) {
    RVal x = kb.load(A, {i});
    RVal y = kb.load(B, {i});
    kb.store(kb.sub(kb.add(x, y), kb.real(0.25)), B, {i});
    kb.set(acc, kb.get(acc) + x);
  });
  kb.store(kb.get(acc), B, {kb.idx(0)});
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());

  const numrep::NumericFormat fix6 = numrep::NumericFormat::fixed(6);
  const numrep::NumericFormat fix12 = numrep::NumericFormat::fixed(12);
  const std::vector<TypeAssignment> lanes = {
      TypeAssignment::uniform(*f, {fix6, 3}),
      TypeAssignment::uniform(*f, {fix6, 3}),
      TypeAssignment::uniform(*f, {fix6, 3}), // run of three 8-per-word lanes
      TypeAssignment::uniform(*f, {fix12, 7}),
      TypeAssignment::uniform(*f, {fix12, 7}), // 4-per-word pair
      TypeAssignment::uniform(*f, {numrep::kBinary32, 0}), // splits the runs
      TypeAssignment::uniform(*f, {numrep::kFixed16, 8}),
      TypeAssignment::uniform(*f, {numrep::kFixed16, 8}), // 2-per-word pair
      TypeAssignment::uniform(*f, {numrep::kPosit16, 0}),
      TypeAssignment::uniform(*f, {numrep::kFixed16, 9}), // lone: stays scalar
      {},
  };
  RunOptions opt;
  opt.track_array_ranges = true;
  opt.track_register_ranges = true;
  expect_batch_matches_reference(*f, lanes, synth_inputs(*f, 13), opt);
}

TEST(EngineBatch, PerLaneProfilesMatchScalarVm) {
  ir::Module m;
  KernelBuilder kb(m, "profiled");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    RVal x = kb.load(A, {i});
    kb.store(kb.select(kb.fcmp(ir::CmpPred::LT, x, kb.real(0.5)), x,
                       kb.mul(x, kb.real(0.5))),
             A, {i});
  });
  ir::Function* f = kb.finish();
  const ArrayStore inputs = synth_inputs(*f, 14);
  const std::vector<TypeAssignment> lanes = {
      {},
      TypeAssignment::uniform(*f, {numrep::kFixed32, 10}),
      TypeAssignment::uniform(*f, {numrep::kBfloat16, 0}),
  };

  const VmEngine vm;
  std::vector<ArrayStore> stores(lanes.size(), inputs);
  std::vector<VmProfile> profiles(lanes.size());
  std::vector<BatchRequest> reqs(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    reqs[i] = {&lanes[i], &stores[i], &profiles[i]};
  const std::vector<RunResult> got = vm.run_batch(*f, reqs, {});
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    ASSERT_TRUE(got[i].ok) << got[i].error;
    ArrayStore scalar_store = inputs;
    VmProfile want;
    RunOptions opt;
    opt.vm_profile = &want;
    ASSERT_TRUE(vm.run(*f, lanes[i], scalar_store, opt).ok);
    EXPECT_EQ(want.instr_executions, profiles[i].instr_executions)
        << "lane " << i;
    EXPECT_EQ(want.edge_applications, profiles[i].edge_applications)
        << "lane " << i;
    EXPECT_EQ(want.select_real_first, profiles[i].select_real_first)
        << "lane " << i;
  }
}

void expect_error_cells_equal(const std::vector<ErrorCell>& want,
                              const std::vector<ErrorCell>& got,
                              const char* what, std::size_t lane) {
  ASSERT_EQ(want.size(), got.size()) << what << " lane " << lane;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const ErrorCell& w = want[i];
    const ErrorCell& g = got[i];
    EXPECT_EQ(w.count, g.count) << what << "[" << i << "] lane " << lane;
    EXPECT_EQ(w.sum_abs, g.sum_abs) << what << "[" << i << "] lane " << lane;
    EXPECT_EQ(w.max_abs, g.max_abs) << what << "[" << i << "] lane " << lane;
    EXPECT_EQ(w.sum_rel, g.sum_rel) << what << "[" << i << "] lane " << lane;
    EXPECT_EQ(w.max_rel, g.max_rel) << what << "[" << i << "] lane " << lane;
    for (int b = 0; b < ErrorCell::kBuckets; ++b) {
      EXPECT_EQ(w.hist_abs[b], g.hist_abs[b])
          << what << "[" << i << "] abs bucket " << b << " lane " << lane;
      EXPECT_EQ(w.hist_rel[b], g.hist_rel[b])
          << what << "[" << i << "] rel bucket " << b << " lane " << lane;
    }
  }
}

/// Field-by-field equality of a batch lane's shadow-error profile with
/// the scalar VM's — down to histogram buckets and spike step numbers.
void expect_error_profiles_equal(const ErrorProfile& want,
                                 const ErrorProfile& got, std::size_t lane) {
  expect_error_cells_equal(want.instr, got.instr, "instr", lane);
  expect_error_cells_equal(want.moves, got.moves, "moves", lane);
  EXPECT_EQ(want.first_spike_step, got.first_spike_step) << "lane " << lane;
  EXPECT_EQ(want.first_spike_pc, got.first_spike_pc) << "lane " << lane;
  EXPECT_EQ(want.first_spike_src, got.first_spike_src) << "lane " << lane;
  EXPECT_EQ(want.first_spike_rel, got.first_spike_rel) << "lane " << lane;
  EXPECT_EQ(want.control_divergences, got.control_divergences)
      << "lane " << lane;
  EXPECT_EQ(want.first_control_divergence_step,
            got.first_control_divergence_step)
      << "lane " << lane;
  EXPECT_EQ(want.finalized, got.finalized) << "lane " << lane;
  ASSERT_EQ(want.arrays.size(), got.arrays.size()) << "lane " << lane;
  for (std::size_t a = 0; a < want.arrays.size(); ++a) {
    EXPECT_EQ(want.arrays[a].name, got.arrays[a].name) << "lane " << lane;
    EXPECT_EQ(want.arrays[a].stored, got.arrays[a].stored) << "lane " << lane;
    EXPECT_EQ(want.arrays[a].elements, got.arrays[a].elements)
        << "lane " << lane;
    EXPECT_EQ(want.arrays[a].max_abs, got.arrays[a].max_abs)
        << "lane " << lane;
    EXPECT_EQ(want.arrays[a].max_rel, got.arrays[a].max_rel)
        << "lane " << lane;
    EXPECT_EQ(want.arrays[a].mpe, got.arrays[a].mpe) << "lane " << lane;
    EXPECT_EQ(want.arrays[a].finite, got.arrays[a].finite) << "lane " << lane;
  }
  EXPECT_EQ(want.program_mpe, got.program_mpe) << "lane " << lane;
  ASSERT_EQ(want.shadow_arrays.size(), got.shadow_arrays.size())
      << "lane " << lane;
  for (const auto& [name, buf] : want.shadow_arrays) {
    const auto it = got.shadow_arrays.find(name);
    ASSERT_NE(it, got.shadow_arrays.end()) << "lane " << lane << " " << name;
    EXPECT_TRUE(buffers_bit_equal(buf, it->second))
        << "lane " << lane << " shadow " << name;
  }
}

TEST(EngineBatch, PerLaneErrorProfilesMatchScalarVm) {
  // A loop-carried real phi keeps the phi-move cells busy; the fcmp/
  // select pair gives coarse lanes room for control divergences. Every
  // accumulator of every lane must agree with the scalar VM bit for bit.
  ir::Module m;
  KernelBuilder kb(m, "err_profiled");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  ScalarCell acc = kb.scalar("acc", -16.0, 16.0);
  kb.set(acc, kb.real(0.0));
  kb.for_loop("i", 0, 8, [&](IVal i) {
    RVal x = kb.load(A, {i});
    RVal y = kb.select(kb.fcmp(ir::CmpPred::LT, x, kb.real(0.5)),
                       kb.add(x, kb.real(0.125)), kb.mul(x, kb.real(0.75)));
    kb.store(y, A, {i});
    kb.set(acc, kb.get(acc) + y);
  });
  kb.store(kb.get(acc), A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const ArrayStore inputs = synth_inputs(*f, 17);
  const std::vector<TypeAssignment> lanes = {
      {},
      TypeAssignment::uniform(*f, {numrep::kFixed32, 10}),
      TypeAssignment::uniform(*f, {numrep::kBfloat16, 0}),
      TypeAssignment::uniform(*f, {numrep::NumericFormat::fixed(8), 4}),
  };

  const VmEngine vm;
  std::vector<ArrayStore> stores(lanes.size(), inputs);
  std::vector<ErrorProfile> errors(lanes.size());
  std::vector<BatchRequest> reqs(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    reqs[i] = {&lanes[i], &stores[i], nullptr, &errors[i]};
  const std::vector<RunResult> got = vm.run_batch(*f, reqs, {});
  bool any_error_observed = false;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    ASSERT_TRUE(got[i].ok) << got[i].error;
    ArrayStore scalar_store = inputs;
    ErrorProfile want;
    RunOptions opt;
    opt.error_profile = &want;
    ASSERT_TRUE(vm.run(*f, lanes[i], scalar_store, opt).ok);
    EXPECT_TRUE(buffers_bit_equal(scalar_store.at("A"), stores[i].at("A")))
        << "lane " << i;
    expect_error_profiles_equal(want, errors[i], i);
    for (const ErrorCell& c : errors[i].instr)
      any_error_observed = any_error_observed || c.max_abs > 0.0;
  }
  // The coarse lanes really did deviate — the equality above is not
  // comparing all-zero accumulators.
  EXPECT_TRUE(any_error_observed);
  EXPECT_GT(errors[3].program_mpe, 0.0);
}

TEST(EngineBatch, TrapRetiredLaneErrorProfileMatchesScalarVm) {
  // The stall kernel again: the coarse fixed lane spins to the step
  // limit and is trap-retired mid-batch. Its profile must freeze exactly
  // where the scalar VM's does — same cell counts, not finalized, no
  // per-array stats — while the surviving lanes finalize normally.
  const char* text = R"(func @stall_err {
  array @A[1] range [0.0, 4.0]
entry:
  br loop
loop:
  %0 = phi real [ 0.0, entry ], [ %1, loop ]
  %1 = add %0, 0.001
  %2 = fcmp lt %1, 1.0
  condbr %2, loop, done
done:
  store %1, @A[0]
  ret
})";
  ir::Module m;
  const ir::ParseResult parsed = ir::parse_function(m, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ir::Function& f = *parsed.function;
  const std::vector<TypeAssignment> lanes = {
      {},
      TypeAssignment::uniform(f, {numrep::kFixed32, 6}), // 0.001 -> 0: spins
      TypeAssignment::uniform(f, {numrep::kBinary32, 0}),
  };
  RunOptions opt;
  opt.max_steps = 50'000;
  const ArrayStore inputs = synth_inputs(f, 18);

  const VmEngine vm;
  std::vector<ArrayStore> stores(lanes.size(), inputs);
  std::vector<ErrorProfile> errors(lanes.size());
  std::vector<BatchRequest> reqs(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    reqs[i] = {&lanes[i], &stores[i], nullptr, &errors[i]};
  BatchRunOptions bopt;
  bopt.run = opt;
  const std::vector<RunResult> got = vm.run_batch(f, reqs, bopt);
  ASSERT_FALSE(got[1].ok);
  EXPECT_FALSE(errors[1].finalized);
  EXPECT_TRUE(errors[0].finalized && errors[2].finalized);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    ArrayStore scalar_store = inputs;
    ErrorProfile want;
    RunOptions sopt = opt;
    sopt.error_profile = &want;
    const RunResult sres = vm.run(f, lanes[i], scalar_store, sopt);
    EXPECT_EQ(sres.ok, got[i].ok) << "lane " << i;
    EXPECT_EQ(sres.steps, got[i].steps) << "lane " << i;
    expect_error_profiles_equal(want, errors[i], i);
  }
  // The spinning lane's phi-move cell saw every iteration: one move per
  // loop-back edge, each with zero deviation (the shadow spins too).
  ASSERT_FALSE(errors[1].moves.empty());
  long move_count = 0;
  for (const ErrorCell& c : errors[1].moves) move_count += c.count;
  EXPECT_GT(move_count, 10'000);
}

TEST(EngineBatch, ReferenceEngineBatchFallsBackToScalarLoop) {
  ir::Module m;
  KernelBuilder kb(m, "fallback");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.real(1.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const ArrayStore inputs = synth_inputs(*f, 15);
  const std::vector<TypeAssignment> lanes = {
      {}, TypeAssignment::uniform(*f, {numrep::kBinary32, 0})};

  const ReferenceEngine ref;
  std::vector<ArrayStore> stores(lanes.size(), inputs);
  std::vector<BatchRequest> reqs(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    reqs[i] = {&lanes[i], &stores[i], nullptr};
  const std::vector<RunResult> got = ref.run_batch(*f, reqs, {});
  ASSERT_EQ(got.size(), 2u);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    ArrayStore want_store = inputs;
    const RunResult want = ref.run(*f, lanes[i], want_store, {});
    EXPECT_EQ(want.steps, got[i].steps);
    EXPECT_TRUE(buffers_bit_equal(want_store.at("A"), stores[i].at("A")));
  }
}

TEST(EngineBatch, SharesProgramCacheWithScalarRuns) {
  ir::Module m;
  KernelBuilder kb(m, "batch_cached");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) * kb.real(2.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const ArrayStore inputs = synth_inputs(*f, 16);
  const std::vector<TypeAssignment> lanes = {
      {}, TypeAssignment::uniform(*f, {numrep::kBinary32, 0})};

  ProgramCache cache;
  const VmEngine vm(&cache);
  ArrayStore s0 = inputs;
  ASSERT_TRUE(vm.run(*f, lanes[0], s0, {}).ok); // pre-warms lane 0
  std::vector<ArrayStore> stores(lanes.size(), inputs);
  std::vector<BatchRequest> reqs(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    reqs[i] = {&lanes[i], &stores[i], nullptr};
  ASSERT_TRUE(vm.run_batch(*f, reqs, {}).at(1).ok);
  EXPECT_EQ(cache.stats().hits, 1);       // lane 0 served from the cache
  EXPECT_EQ(cache.stats().insertions, 2); // scalar run + missing lane 1
  // A second batch is all hits.
  std::vector<ArrayStore> stores2(lanes.size(), inputs);
  for (std::size_t i = 0; i < lanes.size(); ++i) reqs[i].store = &stores2[i];
  ASSERT_TRUE(vm.run_batch(*f, reqs, {}).at(0).ok);
  EXPECT_EQ(cache.stats().insertions, 2);
  EXPECT_EQ(cache.stats().hits, 3);
}

TEST(Engine, DisassembleSmoke) {
  ir::Module m;
  KernelBuilder kb(m, "disasm");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.real(1.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const CompiledProgram program = compile_program(*f, {}, {});
  const std::string text = disassemble(program);
  EXPECT_NE(text.find("disasm"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
  EXPECT_GT(program.code.size(), 0u);
  EXPECT_GT(program.num_regs, 0);
}

} // namespace
} // namespace luis::interp
