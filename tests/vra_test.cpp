#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ir/kernel_builder.hpp"
#include "support/rng.hpp"
#include "vra/range_analysis.hpp"

namespace luis::vra {
namespace {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;

TEST(Interval, BasicArithmetic) {
  const Interval a{1.0, 2.0}, b{-3.0, 4.0};
  EXPECT_EQ(iv_add(a, b), (Interval{-2.0, 6.0}));
  EXPECT_EQ(iv_sub(a, b), (Interval{-3.0, 5.0}));
  EXPECT_EQ(iv_mul(a, b), (Interval{-6.0, 8.0}));
  EXPECT_EQ(iv_neg(a), (Interval{-2.0, -1.0}));
  EXPECT_EQ(iv_abs(b), (Interval{0.0, 4.0}));
  EXPECT_EQ(iv_join(a, b), (Interval{-3.0, 4.0}));
}

TEST(Interval, DivisionWidensOnZeroDivisor) {
  const Interval a{1.0, 2.0};
  EXPECT_EQ(iv_div(a, Interval{2.0, 4.0}, 1e9), (Interval{0.25, 1.0}));
  EXPECT_EQ(iv_div(a, Interval{-1.0, 1.0}, 1e9), Interval::top(1e9));
}

TEST(Interval, MonotoneFunctions) {
  EXPECT_EQ(iv_sqrt(Interval{4.0, 9.0}), (Interval{2.0, 3.0}));
  EXPECT_EQ(iv_sqrt(Interval{-4.0, 9.0}).lo, 0.0);
  const Interval e = iv_exp(Interval{0.0, 1.0}, 1e30);
  EXPECT_DOUBLE_EQ(e.lo, 1.0);
  EXPECT_DOUBLE_EQ(e.hi, std::exp(1.0));
}

TEST(Interval, PowCases) {
  // Even constant power over a zero-straddling base.
  EXPECT_EQ(iv_pow(Interval{-2.0, 3.0}, Interval::point(2.0), 1e30),
            (Interval{0.0, 9.0}));
  // Odd power is monotone.
  EXPECT_EQ(iv_pow(Interval{-2.0, 3.0}, Interval::point(3.0), 1e30),
            (Interval{-8.0, 27.0}));
  // Non-constant exponent falls back to top.
  EXPECT_EQ(iv_pow(Interval{1.0, 2.0}, Interval{1.0, 2.0}, 1e30).lo,
            iv_pow(Interval{1.0, 2.0}, Interval{1.0, 2.0}, 1e30).lo);
  // Positive base with fractional exponent stays bounded.
  const Interval p = iv_pow(Interval{1.0, 4.0}, Interval::point(0.5), 1e30);
  EXPECT_DOUBLE_EQ(p.lo, 1.0);
  EXPECT_DOUBLE_EQ(p.hi, 2.0);
}

TEST(Interval, WidenAndClamp) {
  EXPECT_EQ(iv_widen(Interval{0, 1}, Interval{0, 2}, 100), (Interval{0, 100}));
  EXPECT_EQ(iv_widen(Interval{0, 1}, Interval{-1, 1}, 100), (Interval{-100, 1}));
  EXPECT_EQ(iv_widen(Interval{0, 1}, Interval{0, 1}, 100), (Interval{0, 1}));
  EXPECT_EQ(iv_clamp(Interval{-1e40, 1e40}, 1e30), Interval::top(1e30));
}

// A NaN endpoint means "unknown". std::min/max silently drop a NaN argument
// (they return the other one), so a naive join would *shrink* the hull —
// the join must widen to infinity instead and let iv_clamp produce top.
TEST(Interval, JoinIsNaNSafe) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Interval known{-1.0, 2.0};
  for (const Interval poisoned :
       {Interval{nan, 2.0}, Interval{-1.0, nan}, Interval{nan, nan}}) {
    for (const Interval j :
         {iv_join(known, poisoned), iv_join(poisoned, known)}) {
      EXPECT_EQ(j.lo, -inf);
      EXPECT_EQ(j.hi, inf);
    }
  }
  // NaN-free joins still take the exact hull.
  EXPECT_EQ(iv_join(known, Interval{5.0, 6.0}), (Interval{-1.0, 6.0}));
}

TEST(Interval, ClampMapsNaNEndpointsToTop) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(iv_clamp(Interval{nan, nan}, 1e6), Interval::top(1e6));
  EXPECT_EQ(iv_clamp(Interval{nan, 0.5}, 1e6), (Interval{-1e6, 0.5}));
  EXPECT_EQ(iv_clamp(Interval{0.5, nan}, 1e6), (Interval{0.5, 1e6}));
}

TEST(Interval, MulSignGridSurvivesClampSaturation) {
  // All four sign corners of a product that overflows the clamp magnitude
  // must land on top after iv_clamp, whichever corner is extreme.
  const double big = 1e20;
  for (const Interval a : {Interval{big, 2 * big}, Interval{-2 * big, -big},
                           Interval{-big, big}}) {
    for (const Interval b : {Interval{big, 2 * big},
                             Interval{-2 * big, -big}}) {
      const Interval p = iv_clamp(iv_mul(a, b), 1e30);
      EXPECT_GE(p.lo, -1e30);
      EXPECT_LE(p.hi, 1e30);
      EXPECT_TRUE(p.lo == -1e30 || p.hi == 1e30) << p.to_string();
    }
  }
  // Sign grid stays exact when nothing saturates.
  EXPECT_EQ(iv_mul(Interval{-2, 3}, Interval{-5, 4}), (Interval{-15, 12}));
  EXPECT_EQ(iv_mul(Interval{-2, -1}, Interval{-5, -4}), (Interval{4, 10}));
}

TEST(Interval, PointIntervalsThroughJoinAndWiden) {
  const Interval point{2.5, 2.5};
  EXPECT_EQ(iv_join(point, point), point);
  // A stable point never widens; a moved point widens only the moved side.
  EXPECT_EQ(iv_widen(point, point, 100), point);
  EXPECT_EQ(iv_widen(point, Interval{2.5, 3.0}, 100), (Interval{2.5, 100}));
  EXPECT_EQ(iv_widen(point, Interval{2.0, 2.5}, 100), (Interval{-100, 2.5}));
  EXPECT_EQ(iv_mul(point, point), (Interval{6.25, 6.25}));
  EXPECT_EQ(iv_abs(Interval{-2.5, -2.5}), point);
}

TEST(Interval, JoinAndWidenHandleInfiniteEndpoints) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(iv_join(Interval{-inf, 0.0}, Interval{0.0, inf}),
            (Interval{-inf, inf}));
  // Widening an infinite growth direction lands on the bound, and the
  // stable direction is left untouched.
  EXPECT_EQ(iv_widen(Interval{0, 1}, Interval{0, inf}, 100),
            (Interval{0, 100}));
  EXPECT_EQ(iv_widen(Interval{0, 1}, Interval{-inf, inf}, 100),
            (Interval{-100, 100}));
}

// Property: interval arithmetic is sound — f(x, y) lands inside the
// transfer result for sampled x, y.
class IntervalSoundness : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSoundness, SampledOperationsStayInside) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    double a1 = rng.next_double(-10, 10), a2 = rng.next_double(-10, 10);
    double b1 = rng.next_double(-10, 10), b2 = rng.next_double(-10, 10);
    const Interval A{std::min(a1, a2), std::max(a1, a2)};
    const Interval B{std::min(b1, b2), std::max(b1, b2)};
    for (int s = 0; s < 20; ++s) {
      const double x = rng.next_double(A.lo, A.hi);
      const double y = rng.next_double(B.lo, B.hi);
      EXPECT_TRUE(iv_add(A, B).contains(x + y));
      EXPECT_TRUE(iv_sub(A, B).contains(x - y));
      EXPECT_TRUE(iv_mul(A, B).contains(x * y) ||
                  std::abs(x * y - iv_mul(A, B).hi) < 1e-9 ||
                  std::abs(x * y - iv_mul(A, B).lo) < 1e-9);
      if (!B.contains_zero()) {
        const Interval q = iv_div(A, B, 1e30);
        EXPECT_GE(x / y, q.lo - 1e-9);
        EXPECT_LE(x / y, q.hi + 1e-9);
      }
      EXPECT_TRUE(iv_min(A, B).contains(std::min(x, y)));
      EXPECT_TRUE(iv_max(A, B).contains(std::max(x, y)));
      const Interval r = iv_rem(A, B);
      if (y != 0.0) EXPECT_TRUE(r.contains(std::fmod(x, y)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness, ::testing::Values(1, 2, 3));

TEST(RangeAnalysis, PropagatesAnnotationsThroughArithmetic) {
  ir::Module m;
  KernelBuilder kb(m, "prop");
  Array* A = kb.array("A", {4}, -2.0, 3.0);
  Array* B = kb.array("B", {4}, 0.5, 1.0);
  ir::Instruction* sum_inst = nullptr;
  ir::Instruction* prod_inst = nullptr;
  kb.for_loop("i", 0, 4, [&](IVal i) {
    RVal a = kb.load(A, {i});
    RVal b = kb.load(B, {i});
    RVal sum = a + b;
    RVal prod = a * b;
    sum_inst = static_cast<ir::Instruction*>(sum.value);
    prod_inst = static_cast<ir::Instruction*>(prod.value);
    kb.store(sum + prod, A, {i});
  });
  ir::Function* f = kb.finish();
  const RangeMap ranges = analyze_ranges(*f);

  EXPECT_EQ(ranges.of(sum_inst), (Interval{-1.5, 4.0}));
  EXPECT_EQ(ranges.of(prod_inst), (Interval{-2.0, 3.0}));
  // Loads carry the annotation.
  EXPECT_EQ(ranges.of(A), (Interval{-2.0, 3.0}));
}

TEST(RangeAnalysis, ConstantsArePointIntervals) {
  ir::Module m;
  KernelBuilder kb(m, "consts");
  Array* A = kb.array("A", {1}, 0.0, 1.0);
  RVal x = kb.load(A, {kb.idx(0)});
  RVal y = x * kb.real(2.5);
  kb.store(y, A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const RangeMap ranges = analyze_ranges(*f);
  EXPECT_EQ(ranges.of(y.value), (Interval{0.0, 2.5}));
}

TEST(RangeAnalysis, IntInductionVariablesConverge) {
  ir::Module m;
  KernelBuilder kb(m, "loop");
  Array* A = kb.array("A", {100}, 0.0, 1.0);
  ir::Instruction* iv = nullptr;
  kb.for_loop("i", 0, 100, [&](IVal i) {
    iv = static_cast<ir::Instruction*>(i.value);
    kb.store(kb.real(1.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const RangeMap ranges = analyze_ranges(*f);
  // The induction phi joins [0,0] with [1,100]; widening may push the top
  // but the bottom stays at 0.
  const Interval r = ranges.of(iv);
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
  EXPECT_GE(r.hi, 99.0);
}

TEST(RangeAnalysis, DivisionByStraddlingRangeWidens) {
  ir::Module m;
  KernelBuilder kb(m, "divtop");
  Array* A = kb.array("A", {1}, -1.0, 1.0);
  Array* B = kb.array("B", {1}, 1.0, 2.0);
  RVal q = kb.load(B, {kb.idx(0)}) / kb.load(A, {kb.idx(0)});
  kb.store(q, B, {kb.idx(0)});
  ir::Function* f = kb.finish();
  VraOptions opt;
  const RangeMap ranges = analyze_ranges(*f, opt);
  EXPECT_EQ(ranges.of(q.value), Interval::top(opt.clamp));
}

TEST(RangeAnalysis, JoinStoresChecksAnnotations) {
  // With join_stores the analysis flows stored values back into arrays.
  ir::Module m;
  KernelBuilder kb(m, "joinstores");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  Array* B = kb.array("B", {4}, 0.0, 0.1); // deliberately too tight
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.real(5.0), B, {i});
  });
  ir::Function* f = kb.finish();
  VraOptions opt;
  opt.join_stores = true;
  const RangeMap ranges = analyze_ranges(*f, opt);
  // B's effective range must have grown beyond its annotation.
  EXPECT_GE(ranges.of(f->array_by_name("B")).hi, 6.0);
}

TEST(RangeAnalysis, SelectJoinsArms) {
  ir::Module m;
  KernelBuilder kb(m, "sel");
  Array* A = kb.array("A", {1}, -4.0, -1.0);
  Array* B = kb.array("B", {1}, 2.0, 8.0);
  RVal a = kb.load(A, {kb.idx(0)});
  RVal b = kb.load(B, {kb.idx(0)});
  RVal s = kb.select(a < b, a, b);
  kb.store(s, B, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const RangeMap ranges = analyze_ranges(*f);
  EXPECT_EQ(ranges.of(s.value), (Interval{-4.0, 8.0}));
}

TEST(RangeAnalysis, MathIntrinsicRanges) {
  ir::Module m;
  KernelBuilder kb(m, "intrinsics");
  Array* A = kb.array("A", {1}, 1.0, 4.0);
  RVal x = kb.load(A, {kb.idx(0)});
  RVal s = kb.sqrt(x);
  RVal e = kb.exp(kb.neg(x));
  kb.store(s + e, A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const RangeMap ranges = analyze_ranges(*f);
  EXPECT_EQ(ranges.of(s.value), (Interval{1.0, 2.0}));
  EXPECT_NEAR(ranges.of(e.value).hi, std::exp(-1.0), 1e-12);
  EXPECT_NEAR(ranges.of(e.value).lo, std::exp(-4.0), 1e-12);
}

} // namespace
} // namespace luis::vra
