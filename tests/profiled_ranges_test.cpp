#include <gtest/gtest.h>

#include "core/ilp_allocator.hpp"
#include "core/profiled_ranges.hpp"
#include "polybench/polybench.hpp"

namespace luis::core {
namespace {

TEST(ProfiledRanges, ObservationsAreInsideStaticVra) {
  // Dynamic profiles must refine (be contained in) the sound static
  // ranges, modulo both sides' safety margins.
  for (const char* name : {"gemm", "atax", "jacobi-2d"}) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
    const vra::RangeMap static_ranges = vra::analyze_ranges(*kernel.function);
    std::string error;
    const vra::RangeMap profiled =
        profile_ranges(*kernel.function, kernel.inputs, /*margin=*/0.0, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_GT(profiled.size(), 0u);

    for (const auto& bb : kernel.function->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->type() != ir::ScalarType::Real) continue;
        if (!profiled.has(inst.get())) continue; // never executed
        const vra::Interval dyn = profiled.of(inst.get());
        const vra::Interval stat = static_ranges.of(inst.get());
        EXPECT_GE(dyn.lo, stat.lo - 1e-9) << name;
        EXPECT_LE(dyn.hi, stat.hi + 1e-9) << name;
      }
    }
  }
}

TEST(ProfiledRanges, TighterRangesBuyFractionalBits) {
  // With profiled ranges the Fast allocation can only gain (or keep)
  // fractional bits relative to static VRA, never lose them.
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  const vra::RangeMap static_ranges = vra::analyze_ranges(*kernel.function);
  const vra::RangeMap profiled =
      profile_ranges(*kernel.function, kernel.inputs);

  const AllocationResult by_static = allocate_ilp(
      *kernel.function, static_ranges, platform::stm32_table(),
      TuningConfig::fast());
  const AllocationResult by_profile = allocate_ilp(
      *kernel.function, profiled, platform::stm32_table(), TuningConfig::fast());

  for (const auto& arr : kernel.function->arrays()) {
    const auto s = by_static.assignment.of(arr.get());
    const auto p = by_profile.assignment.of(arr.get());
    if (s.format.is_fixed() && p.format.is_fixed()) {
      EXPECT_GE(p.frac_bits, s.frac_bits) << arr->name();
    }
  }
}

TEST(ProfiledRanges, TunedKernelStillAccurate) {
  // End to end with the dynamic range source: tune, run, check error.
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("bicg", m);
  const vra::RangeMap profiled =
      profile_ranges(*kernel.function, kernel.inputs);
  const AllocationResult alloc = allocate_ilp(
      *kernel.function, profiled, platform::stm32_table(), TuningConfig::fast());

  interp::ArrayStore ref = kernel.inputs;
  interp::TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, ref).ok);
  interp::ArrayStore out = kernel.inputs;
  ASSERT_TRUE(run_function(*kernel.function, alloc.assignment, out).ok);
  for (const std::string& o : kernel.outputs) {
    for (std::size_t i = 0; i < ref.at(o).size(); ++i)
      EXPECT_NEAR(out.at(o)[i], ref.at(o)[i], 1e-4) << o;
  }
}

TEST(ProfiledRanges, FailurePathReportsError) {
  // A function with no entry cannot be profiled.
  ir::Module m;
  ir::Function* broken = m.add_function("broken");
  (void)broken;
  std::string error;
  const vra::RangeMap map = profile_ranges(*broken, {}, 0.05, &error);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(map.size(), 0u);
}

} // namespace
} // namespace luis::core
