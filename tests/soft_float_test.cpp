#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numrep/soft_float.hpp"
#include "support/rng.hpp"

namespace luis::numrep {
namespace {

TEST(Formats, TableOneParameters) {
  // Table I of the paper.
  EXPECT_EQ(kBinary16.precision(), 11);
  EXPECT_EQ(kBinary16.max_exponent(), 15);
  EXPECT_EQ(kBinary32.precision(), 24);
  EXPECT_EQ(kBinary32.max_exponent(), 127);
  EXPECT_EQ(kBinary64.precision(), 53);
  EXPECT_EQ(kBinary64.max_exponent(), 1023);
  EXPECT_EQ(kBinary128.precision(), 113);
  EXPECT_EQ(kBinary128.max_exponent(), 16383);
  EXPECT_EQ(kBinary256.precision(), 237);
  EXPECT_EQ(kBinary256.max_exponent(), 262143);
  EXPECT_EQ(kBfloat16.precision(), 8);
  EXPECT_EQ(kBfloat16.max_exponent(), 127);
}

TEST(Formats, NamesRoundTripThroughParser) {
  for (const NumericFormat& fmt : standard_formats()) {
    const auto parsed = parse_format(fmt.name());
    ASSERT_TRUE(parsed.has_value()) << fmt.name();
    EXPECT_EQ(*parsed, fmt) << fmt.name();
  }
  EXPECT_FALSE(parse_format("binary42").has_value());
  EXPECT_EQ(*parse_format("float"), kBinary32);
  EXPECT_EQ(*parse_format("double"), kBinary64);
  EXPECT_EQ(*parse_format("fix"), kFixed32);
  EXPECT_EQ(parse_format("fix24")->width(), 24);
  EXPECT_FALSE(parse_format("fix24")->is_float());
  EXPECT_EQ(parse_format("posit10_1")->es(), 1);
}

TEST(SoftFloat, Binary64IsIdentity) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double(-1e300, 1e300);
    EXPECT_EQ(round_to_format(kBinary64, x), x);
  }
}

TEST(SoftFloat, Binary32MatchesNativeFloat) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    double x;
    switch (i % 4) {
    case 0: x = rng.next_double(-1e3, 1e3); break;
    case 1: x = rng.next_double(-1e-30, 1e-30); break;
    case 2: x = rng.next_double(-1e38, 1e38); break;
    default: x = std::ldexp(rng.next_double(-1, 1), rng.next_int(-140, 130));
    }
    const double expected = static_cast<double>(static_cast<float>(x));
    EXPECT_EQ(round_to_format(kBinary32, x), expected) << x;
  }
}

TEST(SoftFloat, Binary32SubnormalsMatchNative) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double x = std::ldexp(rng.next_double(-1, 1), rng.next_int(-150, -125));
    const double expected = static_cast<double>(static_cast<float>(x));
    EXPECT_EQ(round_to_format(kBinary32, x), expected) << x;
  }
}

TEST(SoftFloat, Binary32OverflowMatchesNative) {
  const double just_over = std::ldexp(1.9999999999, 127);
  EXPECT_EQ(round_to_format(kBinary32, just_over),
            static_cast<double>(static_cast<float>(just_over)));
  EXPECT_TRUE(std::isinf(round_to_format(kBinary32, 1e39)));
  EXPECT_TRUE(std::isinf(round_to_format(kBinary32, -1e39)));
  EXPECT_LT(round_to_format(kBinary32, -1e39), 0.0);
}

TEST(SoftFloat, SpecialValuesPassThrough) {
  EXPECT_EQ(round_to_format(kBinary16, 0.0), 0.0);
  EXPECT_TRUE(std::signbit(round_to_format(kBinary16, -0.0)));
  EXPECT_TRUE(std::isnan(round_to_format(kBinary16, std::nan(""))));
  EXPECT_TRUE(std::isinf(round_to_format(kBinary16, HUGE_VAL)));
}

TEST(SoftFloat, Binary16KnownValues) {
  // 1 + 2^-10 is the next binary16 value after 1.0.
  EXPECT_EQ(round_to_format(kBinary16, 1.0), 1.0);
  EXPECT_EQ(round_to_format(kBinary16, 1.0 + std::ldexp(1.0, -11)), 1.0); // tie to even
  EXPECT_EQ(round_to_format(kBinary16, 1.0 + std::ldexp(1.5, -11)),
            1.0 + std::ldexp(1.0, -10));
  // Max finite binary16 is 65504; 65520 is the rounding boundary to inf.
  EXPECT_EQ(float_max_value(kBinary16), 65504.0);
  EXPECT_EQ(round_to_format(kBinary16, 65519.0), 65504.0);
  EXPECT_TRUE(std::isinf(round_to_format(kBinary16, 65520.0)));
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(float_min_subnormal(kBinary16), std::ldexp(1.0, -24));
  EXPECT_EQ(round_to_format(kBinary16, std::ldexp(1.0, -25) * 1.5),
            std::ldexp(1.0, -24));
}

TEST(SoftFloat, BfloatKnownValues) {
  // bfloat16 has 8 bits of precision: ULP at 1.0 is 2^-7.
  EXPECT_EQ(round_to_format(kBfloat16, 1.0 + std::ldexp(1.0, -9)), 1.0);
  EXPECT_EQ(round_to_format(kBfloat16, 1.0 + std::ldexp(1.1, -8)),
            1.0 + std::ldexp(1.0, -7));
  // Same exponent range as binary32: 1e38 is finite, 1e39 overflows.
  EXPECT_TRUE(std::isfinite(round_to_format(kBfloat16, 1e38)));
  EXPECT_TRUE(std::isinf(round_to_format(kBfloat16, 1e39)));
}

TEST(SoftFloat, IdempotentRounding) {
  Rng rng(4);
  for (const auto& fmt : {kBinary16, kBfloat16, kBinary32}) {
    for (int i = 0; i < 2000; ++i) {
      const double x = std::ldexp(rng.next_double(-2, 2), rng.next_int(-30, 30));
      const double once = round_to_format(fmt, x);
      EXPECT_EQ(round_to_format(fmt, once), once);
    }
  }
}

TEST(SoftFloat, MonotoneRounding) {
  Rng rng(5);
  for (const auto& fmt : {kBinary16, kBfloat16, kBinary32}) {
    for (int i = 0; i < 2000; ++i) {
      const double a = rng.next_double(-1e4, 1e4);
      const double b = rng.next_double(-1e4, 1e4);
      const double ra = round_to_format(fmt, std::min(a, b));
      const double rb = round_to_format(fmt, std::max(a, b));
      EXPECT_LE(ra, rb);
    }
  }
}

TEST(SoftFloat, ArithmeticMatchesNativeFloat) {
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const auto fa = static_cast<float>(rng.next_double(-1e3, 1e3));
    const auto fb = static_cast<float>(rng.next_double(-1e3, 1e3));
    const double a = fa, b = fb;
    EXPECT_EQ(soft_add(kBinary32, a, b), static_cast<double>(fa + fb));
    EXPECT_EQ(soft_sub(kBinary32, a, b), static_cast<double>(fa - fb));
    EXPECT_EQ(soft_mul(kBinary32, a, b), static_cast<double>(fa * fb));
  }
}

TEST(SoftFloat, ExecutabilityPredicate) {
  EXPECT_TRUE(is_executable_float(kBinary16));
  EXPECT_TRUE(is_executable_float(kBinary32));
  EXPECT_TRUE(is_executable_float(kBinary64));
  EXPECT_TRUE(is_executable_float(kBfloat16));
  EXPECT_FALSE(is_executable_float(kBinary128));
  EXPECT_FALSE(is_executable_float(kBinary256));
  EXPECT_FALSE(is_executable_float(kFixed32));
}

// Parameterized property: for every executable format, |round(x) - x| is at
// most half an ULP of x in that format (normal range).
class RoundingErrorSweep : public ::testing::TestWithParam<NumericFormat> {};

TEST_P(RoundingErrorSweep, HalfUlpBound) {
  const NumericFormat fmt = GetParam();
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const int e = static_cast<int>(rng.next_int(fmt.min_exponent() + 1,
                                                std::min(fmt.max_exponent() - 1, 100)));
    const double x = std::ldexp(1.0 + rng.next_double(), e);
    const double ulp = std::ldexp(1.0, e - fmt.precision() + 1);
    EXPECT_LE(std::abs(round_to_format(fmt, x) - x), ulp / 2 * (1 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, RoundingErrorSweep,
                         ::testing::Values(kBinary16, kBfloat16, kBinary32,
                                           NumericFormat::floating(10, 63, 16),
                                           NumericFormat::floating(30, 255, 32)));

} // namespace
} // namespace luis::numrep
