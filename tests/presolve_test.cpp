#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/presolve.hpp"
#include "support/rng.hpp"

namespace luis::ilp {
namespace {

TEST(Presolve, SubstitutesFixedVariables) {
  Model m;
  const VarId x = m.add_continuous("x", 3.0, 3.0); // fixed
  const VarId y = m.add_continuous("y", 0.0, 10.0);
  m.add_le(LinearExpr().add(x, 1).add(y, 1), 8.0);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 1).add(y, 1));

  const PresolvedModel pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.vars_removed, 1);
  EXPECT_EQ(pre.reduced.num_variables(), 1u);
  // The reduced constraint is a singleton, so it is absorbed into bounds.
  EXPECT_EQ(pre.reduced.num_constraints(), 0u);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[0].upper, 5.0);

  const std::vector<double> restored = pre.restore({4.0});
  EXPECT_DOUBLE_EQ(restored[static_cast<std::size_t>(x)], 3.0);
  EXPECT_DOUBLE_EQ(restored[static_cast<std::size_t>(y)], 4.0);
}

TEST(Presolve, SingletonRowsTightenBounds) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 100.0);
  m.add_le(LinearExpr().add(x, 2.0), 10.0);  // x <= 5
  m.add_ge(LinearExpr().add(x, 1.0), 2.0);   // x >= 2
  m.add_le(LinearExpr().add(x, -1.0), -3.0); // -x <= -3  ->  x >= 3
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  const PresolvedModel pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.reduced.num_constraints(), 0u);
  EXPECT_EQ(pre.rows_removed, 3);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[0].lower, 3.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[0].upper, 5.0);
}

TEST(Presolve, IntegerBoundsRoundInward) {
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  m.add_le(LinearExpr().add(x, 2.0), 9.0); // x <= 4.5 -> x <= 4
  m.add_ge(LinearExpr().add(x, 3.0), 7.0); // x >= 2.33 -> x >= 3
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  const PresolvedModel pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[0].lower, 3.0);
  EXPECT_DOUBLE_EQ(pre.reduced.variables()[0].upper, 4.0);
}

TEST(Presolve, DetectsInfeasibilityThroughBounds) {
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  m.add_le(LinearExpr().add(x, 1.0), 3.0);
  m.add_ge(LinearExpr().add(x, 1.0), 7.0);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, IntegerWindowWithNoIntegerIsInfeasible) {
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  // 2.2 <= x <= 2.8 contains no integer.
  m.add_ge(LinearExpr().add(x, 1.0), 2.2);
  m.add_le(LinearExpr().add(x, 1.0), 2.8);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, EmptyRowFeasibilityCheck) {
  Model m;
  const VarId x = m.add_continuous("x", 1.0, 1.0);
  m.add_le(LinearExpr().add(x, 1.0), 0.5); // becomes 1.0 <= 0.5: infeasible
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  EXPECT_TRUE(presolve(m).infeasible);
}

TEST(Presolve, CascadingFixes) {
  // Fixing x through a singleton empties another row, which fixes y.
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  const VarId y = m.add_integer("y", 0, 10);
  m.add_eq(LinearExpr().add(x, 1.0), 4.0);              // x = 4
  m.add_eq(LinearExpr().add(x, 1.0).add(y, 1.0), 10.0); // then y = 6
  m.set_objective(Direction::Minimize, LinearExpr().add(y, 1));
  const PresolvedModel pre = presolve(m);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.vars_removed, 2);
  EXPECT_EQ(pre.reduced.num_variables(), 0u);
  const std::vector<double> restored = pre.restore({});
  EXPECT_DOUBLE_EQ(restored[static_cast<std::size_t>(x)], 4.0);
  EXPECT_DOUBLE_EQ(restored[static_cast<std::size_t>(y)], 6.0);
}

TEST(Presolve, ObjectiveOffsetFromFixedVariables) {
  Model m;
  const VarId x = m.add_continuous("x", 2.0, 2.0);
  const VarId y = m.add_continuous("y", 0.0, 4.0);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 10).add(y, 1));
  const PresolvedModel pre = presolve(m);
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(s.objective, 24.0);
  // The fixed contribution 10*2 lives in the offset, not in the reduced
  // objective, so reduced-space results are lifted exactly once.
  EXPECT_DOUBLE_EQ(pre.objective_offset, 20.0);
  EXPECT_DOUBLE_EQ(pre.reduced.objective().constant(), 0.0);
  // The lifted bound matches the full-model optimum.
  EXPECT_DOUBLE_EQ(s.best_bound, 24.0);
}

TEST(Presolve, BoundAndObjectiveStayConsistentUnderOffset) {
  // Fixed variables with large objective coefficients plus a nontrivial
  // residual MILP: the proven bound must be comparable to the objective in
  // full-model terms (bound >= objective for maximization at optimality).
  Model m;
  const VarId f = m.add_integer("f", 7, 7); // fixed by bounds
  const VarId x = m.add_integer("x", 0, 5);
  const VarId y = m.add_integer("y", 0, 5);
  m.add_le(LinearExpr().add(x, 2.0).add(y, 3.0), 12.0);
  m.set_objective(Direction::Maximize,
                  LinearExpr().add(f, 100).add(x, 4).add(y, 5));
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_GT(s.objective, 700.0); // offset flowed into the objective
  EXPECT_GE(s.best_bound, s.objective - 1e-9);
  EXPECT_NEAR(s.best_bound, s.objective, 1e-6);
}

TEST(Presolve, SolveWithAndWithoutPresolveAgree) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    const int n = 8;
    std::vector<VarId> xs;
    for (int i = 0; i < n; ++i) {
      // A mix of free-ish, tightly bounded, and fixed variables.
      const double lo = static_cast<double>(rng.next_int(0, 2));
      const double hi = lo + static_cast<double>(rng.next_int(0, 3));
      xs.push_back(m.add_integer("x" + std::to_string(i), lo, hi));
    }
    LinearExpr total;
    for (int i = 0; i < n; ++i) {
      // Singleton rows sprinkled in.
      if (rng.next_bool(0.4))
        m.add_le(LinearExpr().add(xs[static_cast<std::size_t>(i)], 1.0),
                 static_cast<double>(rng.next_int(1, 4)));
      total.add(xs[static_cast<std::size_t>(i)],
                static_cast<double>(rng.next_int(-3, 3)));
    }
    m.add_le(std::move(total), static_cast<double>(rng.next_int(2, 12)));
    LinearExpr obj;
    for (int i = 0; i < n; ++i)
      obj.add(xs[static_cast<std::size_t>(i)],
              static_cast<double>(rng.next_int(-5, 5)));
    m.set_objective(Direction::Maximize, std::move(obj));

    BranchAndBoundOptions with, without;
    with.presolve = true;
    without.presolve = false;
    const Solution a = solve_milp(m, with);
    const Solution b = solve_milp(m, without);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == SolveStatus::Optimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(a.values)) << "trial " << trial;
    }
  }
}

} // namespace
} // namespace luis::ilp
