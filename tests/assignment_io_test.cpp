#include <gtest/gtest.h>

#include "core/assignment_io.hpp"
#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "polybench/polybench.hpp"

namespace luis::core {
namespace {

TEST(AssignmentIo, RoundTripsAnIlpAllocation) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  const AllocationResult alloc = allocate_ilp(
      *kernel.function, ranges, platform::stm32_table(), TuningConfig::fast());

  const std::string text =
      assignment_to_text(*kernel.function, alloc.assignment);
  const AssignmentParseResult parsed =
      assignment_from_text(*kernel.function, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  // Every array and Real instruction resolves to the same type.
  for (const auto& arr : kernel.function->arrays())
    EXPECT_EQ(parsed.assignment.of(arr.get()), alloc.assignment.of(arr.get()))
        << arr->name();
  for (const auto& bb : kernel.function->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ir::ScalarType::Real) {
        EXPECT_EQ(parsed.assignment.of(inst.get()),
                  alloc.assignment.of(inst.get()));
      }

  // Executing under the reloaded assignment is bit-identical.
  interp::ArrayStore s1 = kernel.inputs, s2 = kernel.inputs;
  const interp::RunResult r1 =
      run_function(*kernel.function, alloc.assignment, s1);
  const interp::RunResult r2 =
      run_function(*kernel.function, parsed.assignment, s2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(s1.at("C"), s2.at("C"));
  EXPECT_EQ(r1.counters.ops, r2.counters.ops);
}

TEST(AssignmentIo, TextRoundTripIsAFixpoint) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("atax", m);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);
  const AllocationResult alloc =
      allocate_ilp(*kernel.function, ranges, platform::raspberry_table(),
                   TuningConfig::balanced());

  // save -> load -> save reproduces the file byte for byte: the text form
  // is canonical, so cached assignment artifacts diff cleanly.
  const std::string text =
      assignment_to_text(*kernel.function, alloc.assignment);
  const AssignmentParseResult parsed =
      assignment_from_text(*kernel.function, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(assignment_to_text(*kernel.function, parsed.assignment), text);

  // And the round trip survives the IR's own print/parse cycle: ids come
  // from ir::number_instructions, which the printer preserves.
  ir::Module m2;
  const ir::ParseResult reparsed =
      ir::parse_function(m2, ir::print_function(*kernel.function));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  const AssignmentParseResult onto_reparsed =
      assignment_from_text(*reparsed.function, text);
  ASSERT_TRUE(onto_reparsed.ok()) << onto_reparsed.error;
  EXPECT_EQ(assignment_to_text(*reparsed.function, onto_reparsed.assignment),
            text);
}

TEST(AssignmentIo, ParsesDefaultAndComments) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("trisolv", m);
  const AssignmentParseResult parsed = assignment_from_text(*kernel.function,
                                                            R"(# hand-written
@L fix32.20
default binary32
@x fix32.18
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.assignment.of(kernel.function->array_by_name("L")).name(),
            "fix32.20");
  EXPECT_EQ(parsed.assignment.of(kernel.function->array_by_name("x")).name(),
            "fix32.18");
  // Unlisted values fall back to the default.
  EXPECT_EQ(parsed.assignment.of(kernel.function->array_by_name("b")).format,
            numrep::kBinary32);
}

TEST(AssignmentIo, RejectsBadInput) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("trisolv", m);
  EXPECT_FALSE(assignment_from_text(*kernel.function, "@nope fix32.4").ok());
  EXPECT_FALSE(assignment_from_text(*kernel.function, "@L sometype").ok());
  EXPECT_FALSE(assignment_from_text(*kernel.function, "@L fix32.99").ok());
  EXPECT_FALSE(assignment_from_text(*kernel.function, "%9999 binary32").ok());
  EXPECT_FALSE(assignment_from_text(*kernel.function, "L binary32").ok());
}

} // namespace
} // namespace luis::core
