#include <gtest/gtest.h>

#include <cmath>

#include "interp/interpreter.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/verifier.hpp"
#include "support/rng.hpp"

namespace luis::interp {
namespace {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;
using numrep::ConcreteType;
using numrep::kBinary32;
using numrep::kBinary64;
using numrep::kFixed32;
using numrep::kPosit16;

/// dot = sum_i A[i] * B[i] over 8 elements.
ir::Function* build_dot(ir::Module& m) {
  KernelBuilder kb(m, "dot");
  Array* A = kb.array("A", {8}, -2.0, 2.0);
  Array* B = kb.array("B", {8}, -2.0, 2.0);
  ScalarCell dot = kb.scalar("dot", -32.0, 32.0);
  kb.set(dot, kb.real(0.0));
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.set(dot, kb.get(dot) + kb.load(A, {i}) * kb.load(B, {i}));
  });
  return kb.finish();
}

TEST(Interpreter, DotProductInBinary64MatchesReference) {
  ir::Module m;
  ir::Function* f = build_dot(m);
  ASSERT_TRUE(ir::verify(*f).ok());

  ArrayStore store;
  Rng rng(1);
  double expected = 0.0;
  std::vector<double> a(8), b(8);
  for (int i = 0; i < 8; ++i) {
    a[static_cast<std::size_t>(i)] = rng.next_double(-2, 2);
    b[static_cast<std::size_t>(i)] = rng.next_double(-2, 2);
    expected += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  store["A"] = a;
  store["B"] = b;

  TypeAssignment types; // all binary64 by default
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(store["dot"][0], expected);
}

TEST(Interpreter, Binary32ExecutionMatchesNativeFloat) {
  ir::Module m;
  ir::Function* f = build_dot(m);

  ArrayStore store;
  Rng rng(2);
  std::vector<float> fa(8), fb(8);
  for (int i = 0; i < 8; ++i) {
    fa[static_cast<std::size_t>(i)] = static_cast<float>(rng.next_double(-2, 2));
    fb[static_cast<std::size_t>(i)] = static_cast<float>(rng.next_double(-2, 2));
  }
  store["A"].assign(fa.begin(), fa.end());
  store["B"].assign(fb.begin(), fb.end());

  const TypeAssignment types =
      TypeAssignment::uniform(*f, ConcreteType{kBinary32, 0});
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;

  float expected = 0.0f;
  for (int i = 0; i < 8; ++i)
    expected += fa[static_cast<std::size_t>(i)] * fb[static_cast<std::size_t>(i)];
  EXPECT_EQ(store["dot"][0], static_cast<double>(expected));
}

TEST(Interpreter, FixedPointExecutionQuantizes) {
  ir::Module m;
  ir::Function* f = build_dot(m);

  ArrayStore store;
  store["A"] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  store["B"] = {1, 1, 1, 1, 1, 1, 1, 1};

  const TypeAssignment types =
      TypeAssignment::uniform(*f, ConcreteType{kFixed32, 20});
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  // Result close to 3.6 but quantized on the 2^-20 grid.
  EXPECT_NEAR(store["dot"][0], 3.6, 1e-4);
  EXPECT_EQ(store["dot"][0], std::round(store["dot"][0] * 1048576.0) / 1048576.0);
}

TEST(Interpreter, PositExecutionRuns) {
  ir::Module m;
  ir::Function* f = build_dot(m);
  ArrayStore store;
  store["A"] = {1, 0.5, 0.25, 2, 1, 1, 1, 1};
  store["B"] = {1, 1, 1, 1, 1, 1, 1, 1};
  const TypeAssignment types =
      TypeAssignment::uniform(*f, ConcreteType{kPosit16, 0});
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NEAR(store["dot"][0], 7.75, 1e-2);
}

TEST(Interpreter, CountsOpsByTypeClass) {
  ir::Module m;
  ir::Function* f = build_dot(m);
  ArrayStore store;
  const TypeAssignment types =
      TypeAssignment::uniform(*f, ConcreteType{kBinary32, 0});
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  // 8 iterations x (1 add + 1 mul), all float; no casts.
  EXPECT_EQ(r.counters.ops.at({"add", "float"}), 8);
  EXPECT_EQ(r.counters.ops.at({"mul", "float"}), 8);
  for (const auto& [key, count] : r.counters.ops)
    EXPECT_TRUE(key.first.rfind("cast_", 0) != 0) << key.first;
  EXPECT_GT(r.counters.non_real_ops, 0);
}

TEST(Interpreter, CountsCastsAtTypeBoundaries) {
  // A in fix32, everything else double: each load of A converts fix->double.
  ir::Module m;
  ir::Function* f = build_dot(m);
  TypeAssignment types; // default binary64
  types.set(f->array_by_name("A"), ConcreteType{kFixed32, 16});
  ArrayStore store;
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.counters.ops.at({"cast_fix", "double"}), 8);
}

TEST(Interpreter, MixedFixedFracCountsShiftCasts) {
  ir::Module m;
  KernelBuilder kb(m, "shift");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  Array* B = kb.array("B", {4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) { kb.store(kb.load(A, {i}), B, {i}); });
  ir::Function* f = kb.finish();

  TypeAssignment types;
  types.set(f->array_by_name("A"), ConcreteType{kFixed32, 10});
  types.set(f->array_by_name("B"), ConcreteType{kFixed32, 20});
  // Loads/stores inherit default double -> set all instructions to fix.
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ir::ScalarType::Real)
        types.set(inst.get(), ConcreteType{kFixed32, 10});
  ArrayStore store;
  store["A"] = {0.5, 0.25, 0.75, 1.0};
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  // Each store converts fix32.10 -> fix32.20: a fix->fix shift cast.
  EXPECT_EQ(r.counters.ops.at({"cast_fix", "fix"}), 4);
  EXPECT_EQ(store["B"], (std::vector<double>{0.5, 0.25, 0.75, 1.0}));
}

TEST(Interpreter, SelectAndCompare) {
  ir::Module m;
  KernelBuilder kb(m, "clamp");
  Array* A = kb.array("A", {4}, -10.0, 10.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    RVal x = kb.load(A, {i});
    RVal hi = kb.real(1.0);
    RVal lo = kb.real(-1.0);
    RVal clamped = kb.select(x > hi, hi, kb.select(x < lo, lo, x));
    kb.store(clamped, A, {i});
  });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  ArrayStore store;
  store["A"] = {-5.0, -0.5, 0.5, 5.0};
  TypeAssignment types;
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(store["A"], (std::vector<double>{-1.0, -0.5, 0.5, 1.0}));
}

TEST(Interpreter, TriangularLoopAndIfThen) {
  // Upper-triangle fill: B[i][j] = 1 for j >= i, else untouched.
  ir::Module m;
  KernelBuilder kb(m, "tri");
  Array* B = kb.array("B", {4, 4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.for_loop("j", i, kb.idx(4), [&](IVal j) {
      kb.store(kb.real(1.0), B, {i, j});
    });
  });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  ArrayStore store;
  TypeAssignment types;
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(store["B"][static_cast<std::size_t>(i * 4 + j)],
                j >= i ? 1.0 : 0.0);
}

TEST(Interpreter, DownwardLoop) {
  ir::Module m;
  KernelBuilder kb(m, "down");
  Array* A = kb.array("A", {5}, 0.0, 10.0);
  ScalarCell k = kb.scalar("k", 0.0, 10.0);
  kb.set(k, kb.real(0.0));
  kb.for_down("i", 4, 0, [&](IVal i) {
    kb.set(k, kb.get(k) + kb.real(1.0));
    kb.store(kb.get(k), A, {i});
  });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  ArrayStore store;
  TypeAssignment types;
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(store["A"], (std::vector<double>{5.0, 4.0, 3.0, 2.0, 1.0}));
}

TEST(Interpreter, StepLimitAborts) {
  ir::Module m;
  KernelBuilder kb(m, "long");
  Array* A = kb.array("A", {1}, 0.0, 1.0);
  kb.for_loop("i", 0, 1000000, [&](IVal) { kb.store(kb.real(1.0), A, {kb.idx(0)}); });
  ir::Function* f = kb.finish();
  ArrayStore store;
  TypeAssignment types;
  RunOptions opt;
  opt.max_steps = 1000;
  const RunResult r = run_function(*f, types, store, opt);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("step limit"), std::string::npos);
}

TEST(Interpreter, MathIntrinsics) {
  ir::Module m;
  KernelBuilder kb(m, "math");
  Array* A = kb.array("A", {4}, 0.0, 16.0);
  Array* B = kb.array("B", {4}, -100.0, 100.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    RVal x = kb.load(A, {i});
    kb.store(kb.sqrt(x) + kb.exp(kb.neg(x)) + kb.pow(x, kb.real(2.0)) +
                 kb.abs(kb.neg(x)) + kb.fmax(x, kb.real(1.0)),
             B, {i});
  });
  ir::Function* f = kb.finish();
  ArrayStore store;
  store["A"] = {0.0, 1.0, 4.0, 9.0};
  TypeAssignment types;
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  for (int i = 0; i < 4; ++i) {
    const double x = store["A"][static_cast<std::size_t>(i)];
    const double expect =
        std::sqrt(x) + std::exp(-x) + x * x + x + std::max(x, 1.0);
    EXPECT_DOUBLE_EQ(store["B"][static_cast<std::size_t>(i)], expect);
  }
  EXPECT_EQ(r.counters.ops.at({"sqrt", "double"}), 4);
  EXPECT_EQ(r.counters.ops.at({"exp", "double"}), 4);
  EXPECT_EQ(r.counters.ops.at({"pow", "double"}), 4);
}

TEST(Interpreter, IntToRealConversion) {
  ir::Module m;
  KernelBuilder kb(m, "itr");
  Array* A = kb.array("A", {4}, 0.0, 4.0);
  kb.for_loop("i", 0, 4, [&](IVal i) { kb.store(kb.to_real(i), A, {i}); });
  ir::Function* f = kb.finish();
  ArrayStore store;
  TypeAssignment types;
  const RunResult r = run_function(*f, types, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(store["A"], (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
  EXPECT_EQ(r.counters.ops.at({"cast_fix", "double"}), 4);
}

TEST(CostCounters, TotalRealOps) {
  CostCounters c;
  c.count_op("add", "fix");
  c.count_op("add", "fix");
  c.count_op("mul", "double");
  EXPECT_EQ(c.total_real_ops(), 3);
}

} // namespace
} // namespace luis::interp
