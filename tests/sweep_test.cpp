#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "polybench/polybench.hpp"
#include "support/thread_pool.hpp"

namespace luis::core {
namespace {

// A grid small enough to keep the test fast but wide enough to exercise
// every axis: two presets, two platforms with different op-time tables,
// kernels with different model shapes.
SweepOptions small_grid() {
  SweepOptions opt;
  opt.kernels = {"trisolv", "atax", "jacobi-1d"};
  opt.configs = {"Fast", "Precise"};
  opt.platforms = {"Stm32", "AMD"};
  opt.check_determinism = false;
  return opt;
}

TEST(Sweep, ParallelMatchesSerialBitIdentical) {
  // The tentpole guarantee: a parallel sweep computes exactly what the
  // serial loop computes — same assignments, same objectives, bit for bit.
  SweepOptions serial = small_grid();
  serial.threads = 1;
  serial.use_cache = false; // plain serial reference: no shared state at all
  const SweepResult a = run_sweep(serial);

  SweepOptions parallel = small_grid();
  parallel.threads = 4;
  parallel.use_cache = true; // shared cache must not change anything
  const SweepResult b = run_sweep(parallel);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const SweepJobResult& ja = a.jobs[i];
    const SweepJobResult& jb = b.jobs[i];
    ASSERT_EQ(ja.kernel, jb.kernel);
    ASSERT_EQ(ja.config, jb.config);
    ASSERT_EQ(ja.platform, jb.platform);
    EXPECT_TRUE(ja.ok);
    EXPECT_TRUE(jb.ok);
    // Bit-identical, deliberately not EXPECT_NEAR.
    EXPECT_EQ(ja.assignment_text, jb.assignment_text)
        << ja.kernel << "/" << ja.config << "/" << ja.platform;
    EXPECT_EQ(ja.stats.objective, jb.stats.objective);
    EXPECT_EQ(ja.stats.status, jb.stats.status);
    EXPECT_EQ(ja.stats.nodes, jb.stats.nodes);
    EXPECT_EQ(ja.speedup_percent, jb.speedup_percent);
    EXPECT_EQ(ja.mpe, jb.mpe);
  }
}

TEST(Sweep, DeterminismCheckPassesAndCacheHits) {
  SweepOptions opt = small_grid();
  opt.threads = 2;
  opt.check_determinism = true;
  const SweepResult r = run_sweep(opt);

  EXPECT_EQ(r.stats.failed, 0);
  EXPECT_EQ(r.stats.determinism_mismatches, 0);
  // The serial re-check re-solves every ILP model, and every re-solve must
  // hit the cache filled by the sweep itself.
  EXPECT_GT(r.stats.cache.hits, 0);
  EXPECT_GT(r.stats.cache.hit_rate(), 0.0);
  const long ilp_jobs =
      static_cast<long>(opt.kernels.size() * opt.configs.size() *
                        opt.platforms.size());
  EXPECT_EQ(r.stats.cache.hits, ilp_jobs);
  EXPECT_EQ(r.stats.cache.lookups, 2 * ilp_jobs);
}

/// Masks every JSON value with '#' while keeping keys, field order, and
/// structure — the "shape" the golden file pins. Values (numbers, bools,
/// string values, timings) vary run to run; the field order is the
/// contract downstream report consumers parse against.
std::string json_shape(const std::string& json) {
  const std::string structural = "{}[]:,\n ";
  std::string out;
  std::size_t i = 0;
  const auto skip_ws = [&](std::size_t p) {
    while (p < json.size() && (json[p] == ' ' || json[p] == '\n')) ++p;
    return p;
  };
  while (i < json.size()) {
    const char c = json[i];
    if (c == '"') {
      std::size_t end = i + 1;
      while (end < json.size() && json[end] != '"') ++end;
      const std::size_t after = skip_ws(end + 1);
      if (after < json.size() && json[after] == ':')
        out.append(json, i, end - i + 1); // a key: keep it verbatim
      else
        out += '#'; // a string value: mask it
      i = end + 1;
    } else if (structural.find(c) != std::string::npos) {
      out += c;
      ++i;
    } else {
      out += '#'; // a number / bool token: mask the whole run
      while (i < json.size() && structural.find(json[i]) == std::string::npos &&
             json[i] != '"')
        ++i;
    }
  }
  return out;
}

TEST(Sweep, BatchedExecutionMatchesScalarBitIdentical) {
  // Batching only changes how tuned assignments are interpreted (lanes of
  // one run_batch per kernel vs one scalar run per job); every reported
  // metric must be bit-identical, and the batch stats must account for
  // every ILP job.
  SweepOptions batched = small_grid();
  batched.threads = 2;
  const SweepResult a = run_sweep(batched);

  SweepOptions scalar = small_grid();
  scalar.threads = 2;
  scalar.batch = false;
  const SweepResult b = run_sweep(scalar);

  const long ilp_jobs =
      static_cast<long>(batched.kernels.size() * batched.configs.size() *
                        batched.platforms.size());
  EXPECT_EQ(a.stats.batch_runs, static_cast<long>(batched.kernels.size()));
  EXPECT_EQ(a.stats.batch_lanes, ilp_jobs);
  EXPECT_GT(a.stats.batch_unique_lanes, 0);
  EXPECT_LE(a.stats.batch_unique_lanes, a.stats.batch_lanes);
  EXPECT_EQ(b.stats.batch_runs, 0);
  EXPECT_EQ(b.stats.batch_lanes, 0);

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const SweepJobResult& ja = a.jobs[i];
    const SweepJobResult& jb = b.jobs[i];
    ASSERT_EQ(ja.kernel, jb.kernel);
    ASSERT_EQ(ja.config, jb.config);
    ASSERT_EQ(ja.platform, jb.platform);
    EXPECT_TRUE(ja.ok) << ja.error;
    EXPECT_TRUE(jb.ok) << jb.error;
    EXPECT_EQ(ja.assignment_text, jb.assignment_text);
    EXPECT_EQ(ja.speedup_percent, jb.speedup_percent)
        << ja.kernel << "/" << ja.config << "/" << ja.platform;
    EXPECT_EQ(ja.mpe, jb.mpe)
        << ja.kernel << "/" << ja.config << "/" << ja.platform;
  }
}

TEST(Sweep, JsonReportShapeMatchesGolden) {
  SweepOptions opt;
  opt.kernels = {"trisolv"};
  opt.configs = {"Fast"};
  opt.platforms = {"Stm32"};
  opt.include_taffo = false;
  opt.threads = 1;
  opt.check_determinism = false;
  const std::string shape = json_shape(sweep_report_json(run_sweep(opt)));

  std::ifstream is(LUIS_TEST_DATA_DIR "/golden/sweep_report_shape.txt");
  ASSERT_TRUE(is.good()) << "missing tests/golden/sweep_report_shape.txt";
  const std::string golden((std::istreambuf_iterator<char>(is)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(shape, golden)
      << "sweep_report_json changed its field order or structure; if that "
         "is intentional, regenerate tests/golden/sweep_report_shape.txt";
}

TEST(Sweep, JobOrderIsKernelMajorAndComplete) {
  SweepOptions opt = small_grid();
  opt.threads = 3;
  const SweepResult r = run_sweep(opt);
  // 3 kernels x 2 platforms x (2 configs + TAFFO).
  ASSERT_EQ(r.jobs.size(), 18u);
  ASSERT_EQ(r.stats.jobs, 18);
  std::size_t i = 0;
  for (const std::string& kernel : opt.kernels)
    for (const std::string& platform : opt.platforms)
      for (const char* config : {"Fast", "Precise", "TAFFO"}) {
        EXPECT_EQ(r.jobs[i].kernel, kernel);
        EXPECT_EQ(r.jobs[i].platform, platform);
        EXPECT_EQ(r.jobs[i].config, config);
        ++i;
      }
}

TEST(Sweep, StageTimingsAggregateAndStayBounded) {
  SweepOptions opt = small_grid();
  opt.threads = 2;
  opt.include_taffo = false;
  const SweepResult r = run_sweep(opt);
  StageTimings sum;
  for (const SweepJobResult& job : r.jobs) {
    EXPECT_LE(job.timings.stage_sum(), job.timings.total_seconds + 1e-9);
    sum += job.timings;
  }
  EXPECT_DOUBLE_EQ(r.stats.stage_totals.allocation_seconds,
                   sum.allocation_seconds);
  EXPECT_GT(r.stats.stage_totals.solve_seconds, 0.0);
  EXPECT_GT(r.stats.solver_iterations, 0);
}

TEST(Sweep, ReportsRenderTextAndJson) {
  SweepOptions opt = small_grid();
  opt.kernels = {"trisolv"};
  opt.threads = 2;
  opt.check_determinism = true;
  const SweepResult r = run_sweep(opt);

  const std::string text = sweep_summary_text(r);
  EXPECT_NE(text.find("cache:"), std::string::npos);
  EXPECT_NE(text.find("determinism check: PASS"), std::string::npos);

  const std::string json = sweep_report_json(r);
  EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"determinism_mismatches\":0"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":\"trisolv\""), std::string::npos);
  EXPECT_NE(json.find("\"stage_totals\""), std::string::npos);
}

TEST(Sweep, CloneFunctionIsExact) {
  // Per-job isolation rests on clones being exact — including
  // full-precision range annotations, which used to be printed at default
  // (6-digit) precision and silently shifted VRA ranges on re-parse.
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  // Force an annotation with a value that does not survive 6-digit
  // rounding.
  for (const auto& arr : kernel.function->arrays()) {
    if (arr->range_annotation()) {
      arr->annotate_range(-1.0000001234567891, 2.7182818284590452);
      break;
    }
  }
  ir::Module dest;
  ir::Function* clone = ir::clone_function(*kernel.function, dest);
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(ir::print_function(*kernel.function), ir::print_function(*clone));
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> counts(kN);
  support::parallel_for(kN, 4, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);

  // Serial path: inline, in order.
  std::vector<std::size_t> order;
  support::parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  support::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
  // The pool stays usable after an idle wait.
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 101);
}

} // namespace
} // namespace luis::core
