// Shadow-execution error profiler (interp::ErrorProfile + obs error
// report + analysis certificate cross-check).
//
// The profiler's contract has three legs, each tested here: it is a pure
// observer (quantized outputs bit-identical with the shadow on or off,
// and with zero control divergences the shadow itself is bit-identical
// to an independent binary64 run); its whole-program MPE and per-array
// stats reconcile exactly with external recomputation from the final
// buffers; and its measured deviations never exceed the static
// certificates on the kernels `luis check` certifies.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analysis/certificate_check.hpp"
#include "interp/bytecode.hpp"
#include "interp/engine.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "obs/error_profile.hpp"
#include "obs/profile.hpp"
#include "platform/optime.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

namespace luis {
namespace {

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct ProfiledRun {
  interp::CompiledProgram program;
  interp::ArrayStore outputs;
  interp::ErrorProfile errors;
};

/// Runs `kernel` under a uniform `type` through the VM with the shadow
/// attached; asserts the run succeeds and the profile finalizes.
ProfiledRun profiled_run(const std::string& kernel, ir::Module& module,
                         numrep::ConcreteType type,
                         interp::VmProfile* vm_profile = nullptr) {
  const polybench::BuiltKernel built = polybench::build_kernel(kernel, module);
  const interp::TypeAssignment types =
      interp::TypeAssignment::uniform(*built.function, type);
  ProfiledRun out;
  out.program = interp::compile_program(*built.function, types, {});
  out.outputs = built.inputs;
  interp::RunOptions opt;
  opt.error_profile = &out.errors;
  opt.vm_profile = vm_profile;
  const interp::RunResult run =
      interp::run_program(out.program, *built.function, out.outputs, opt);
  EXPECT_TRUE(run.ok) << kernel << ": " << run.error;
  EXPECT_TRUE(out.errors.finalized) << kernel;
  return out;
}

TEST(ErrorProfile, ShadowIsAPureObserver) {
  // Profiling must not perturb the quantized run by a single bit, and
  // with no control divergence the shadow must equal an independent
  // binary64 run of the same inputs.
  for (const char* kernel : {"atax", "trisolv", "gemm"}) {
    ir::Module m_plain, m_prof, m_ref;
    const polybench::BuiltKernel plain =
        polybench::build_kernel(kernel, m_plain);
    const interp::TypeAssignment b32 = interp::TypeAssignment::uniform(
        *plain.function, {numrep::kBinary32, 0});
    interp::ArrayStore unprofiled = plain.inputs;
    ASSERT_TRUE(interp::run_program(
                    interp::compile_program(*plain.function, b32, {}),
                    *plain.function, unprofiled, {})
                    .ok);

    const ProfiledRun prof =
        profiled_run(kernel, m_prof, {numrep::kBinary32, 0});
    for (const auto& [name, buf] : unprofiled)
      EXPECT_TRUE(bits_equal(buf, prof.outputs.at(name)))
          << kernel << " @" << name;

    ASSERT_EQ(prof.errors.control_divergences, 0) << kernel;
    const polybench::BuiltKernel ref = polybench::build_kernel(kernel, m_ref);
    interp::ArrayStore binary64 = ref.inputs;
    ASSERT_TRUE(interp::run_program(
                    interp::compile_program(*ref.function, {}, {}),
                    *ref.function, binary64, {})
                    .ok);
    for (const auto& [name, buf] : binary64)
      EXPECT_TRUE(bits_equal(buf, prof.errors.shadow_arrays.at(name)))
          << kernel << " shadow @" << name;
  }
}

TEST(ErrorProfile, ProgramMpeReconcilesWithExternalComputation) {
  // The in-engine MPE is mean_percentage_error over the stored-to arrays
  // concatenated in binding order, shadow as reference — recompute it
  // from the final buffers with the public statistics helper and demand
  // exact (not approximate) agreement.
  for (const char* kernel : {"atax", "bicg", "mvt"}) {
    ir::Module m;
    const ProfiledRun prof = profiled_run(kernel, m, {numrep::kBinary32, 0});
    std::vector<double> shadow_cat, quant_cat;
    for (const interp::ArrayErrorStats& a : prof.errors.arrays) {
      if (!a.stored) continue;
      const std::vector<double>& q = prof.outputs.at(a.name);
      const std::vector<double>& s = prof.errors.shadow_arrays.at(a.name);
      ASSERT_EQ(q.size(), s.size());
      quant_cat.insert(quant_cat.end(), q.begin(), q.end());
      shadow_cat.insert(shadow_cat.end(), s.begin(), s.end());
    }
    EXPECT_EQ(mean_percentage_error(shadow_cat, quant_cat),
              prof.errors.program_mpe)
        << kernel;
    // binary32 on real data: some error, but far from catastrophic.
    EXPECT_GT(prof.errors.program_mpe, 0.0) << kernel;
    EXPECT_LT(prof.errors.program_mpe, 1.0) << kernel;
  }
}

TEST(ErrorProfile, ArrayStatsMatchTheFinalBuffers) {
  ir::Module m;
  const ProfiledRun prof = profiled_run("atax", m, {numrep::kBinary32, 0});
  for (const interp::ArrayErrorStats& a : prof.errors.arrays) {
    const std::vector<double>& q = prof.outputs.at(a.name);
    const std::vector<double>& s = prof.errors.shadow_arrays.at(a.name);
    ASSERT_EQ(static_cast<long>(q.size()), a.elements);
    double max_abs = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < q.size(); ++i) {
      max_abs = std::max(max_abs, std::abs(q[i] - s[i]));
      finite = finite && std::isfinite(q[i]) && std::isfinite(s[i]);
    }
    EXPECT_EQ(max_abs, a.max_abs) << a.name;
    EXPECT_EQ(finite, a.finite) << a.name;
  }
}

TEST(ErrorProfile, SpikeFieldsFireOnACoarseFormat) {
  // An 8-bit fixed format loses most of the mantissa: relative errors
  // blow straight through the default 1e-3 spike threshold, so the
  // first-spike fields must identify a concrete source line and step.
  const char* text = R"(func @coarse {
  array @A[8] range [0.25, 1.0]
entry:
  br loop
loop:
  %0 = phi int [ 0, entry ], [ %4, loop ]
  %1 = load @A[%0]
  %2 = mul %1, 0.8125
  %3 = add %2, 0.09375
  store %3, @A[%0]
  %4 = iadd %0, 1
  %5 = icmp lt %4, 8
  condbr %5, loop, done
done:
  ret
})";
  ir::Module m;
  const ir::ParseResult parsed = ir::parse_function(m, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const interp::TypeAssignment coarse = interp::TypeAssignment::uniform(
      *parsed.function, {numrep::NumericFormat::fixed(8), 3});
  interp::ArrayStore store;
  store["A"] = {0.25, 0.375, 0.5, 0.625, 0.6875, 0.75, 0.875, 1.0};
  interp::ErrorProfile ep;
  interp::RunOptions opt;
  opt.error_profile = &ep;
  const interp::CompiledProgram program =
      interp::compile_program(*parsed.function, coarse, {});
  ASSERT_TRUE(
      interp::run_program(program, *parsed.function, store, opt).ok);

  EXPECT_GE(ep.first_spike_step, 0);
  EXPECT_GE(ep.first_spike_src, 0);
  EXPECT_GT(ep.first_spike_rel, ep.spike_rel_threshold);
  const obs::ErrorReport rep =
      obs::build_error_report(program, *parsed.function, ep);
  EXPECT_GE(rep.first_spike_ordinal, 0);
  EXPECT_GT(rep.max_rel, 1e-3);
}

TEST(ErrorProfile, ReportAlignsWithTheHotSpotTable) {
  // The error table is priced next to the time table: every error line's
  // ordinal must name a line the hot-spot report also attributes, and
  // the two documents must agree on the instruction text.
  ir::Module m;
  interp::VmProfile vm_profile;
  const ProfiledRun prof =
      profiled_run("trisolv", m, {numrep::kBinary32, 0}, &vm_profile);
  const ir::Function* f = m.functions().front().get();
  const obs::HotSpotReport hot = obs::build_hotspot_report(
      prof.program, *f, vm_profile, platform::stm32_table());
  const obs::ErrorReport rep =
      obs::build_error_report(prof.program, *f, prof.errors);
  ASSERT_FALSE(rep.lines.empty());

  std::map<int, std::string> hot_text;
  for (const obs::HotSpot& h : hot.entries)
    hot_text[h.ordinal] = h.text;
  long observations = 0;
  for (const obs::ErrorLine& ln : rep.lines) {
    observations += ln.count;
    EXPECT_LE(ln.mean_rel, ln.max_rel) << ln.text;
    EXPECT_LE(ln.p50_rel, ln.p90_rel) << ln.text;
    EXPECT_LE(ln.p90_rel, ln.p99_rel) << ln.text;
    EXPECT_LE(ln.max_rel, rep.max_rel) << ln.text;
    const auto it = hot_text.find(ln.ordinal);
    if (it != hot_text.end())
      EXPECT_EQ(it->second, ln.text) << "ordinal " << ln.ordinal;
  }
  EXPECT_EQ(observations, rep.total_observations);

  const std::string text = obs::error_report_text(rep);
  EXPECT_NE(text.find("program MPE"), std::string::npos) << text;
  const std::string json = obs::error_report_json(rep);
  EXPECT_NE(json.find("\"program_mpe\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_rel\""), std::string::npos);
}

TEST(CertificateCrossCheck, MeasuredStaysWithinCertifiedOnRealKernels) {
  // The headline property, on kernels whose Balanced-grade certificates
  // are finite: the shadow-measured deviation must sit under the static
  // bound, with a sane (>= 1) tightness ratio.
  for (const char* kernel : {"atax", "bicg", "mvt"}) {
    ir::Module m;
    const ProfiledRun prof = profiled_run(kernel, m, {numrep::kBinary32, 0});
    const ir::Function* f = m.functions().front().get();
    const interp::TypeAssignment b32 =
        interp::TypeAssignment::uniform(*f, {numrep::kBinary32, 0});
    const analysis::CertificateCrossCheck cc =
        analysis::cross_check_certificates(*f, b32, prof.errors.arrays,
                                           prof.errors.control_divergences);
    EXPECT_FALSE(cc.any_violation) << kernel;
    EXPECT_TRUE(cc.shadow_is_reference) << kernel;
    int checked = 0;
    for (const analysis::ArrayCertCheck& c : cc.arrays) {
      if (!c.checked) continue;
      ++checked;
      EXPECT_LE(c.measured, c.certified) << kernel << " @" << c.name;
      EXPECT_GE(c.tightness, 1.0) << kernel << " @" << c.name;
    }
    EXPECT_GT(checked, 0) << kernel << ": no finite certificate checked";
  }
}

TEST(CertificateCrossCheck, FabricatedExcessTripsTheViolationGate) {
  // The gate must actually fire: feed the checker measured stats above
  // any plausible bound and demand a violation verdict (this is the
  // path `luis profile --errors` exits nonzero on).
  ir::Module m;
  const polybench::BuiltKernel built = polybench::build_kernel("atax", m);
  const interp::TypeAssignment b32 = interp::TypeAssignment::uniform(
      *built.function, {numrep::kBinary32, 0});
  std::vector<interp::ArrayErrorStats> fake;
  for (const auto& arr : built.function->arrays()) {
    interp::ArrayErrorStats s;
    s.name = arr->name();
    s.stored = true;
    s.elements = 1;
    s.max_abs = 1e6; // far beyond any finite certificate
    s.max_rel = 1e6;
    s.mpe = 100.0;
    fake.push_back(std::move(s));
  }
  const analysis::CertificateCrossCheck cc =
      analysis::cross_check_certificates(*built.function, b32, fake, 0);
  EXPECT_TRUE(cc.any_violation);
  bool any_checked_violated = false;
  for (const analysis::ArrayCertCheck& c : cc.arrays) {
    if (c.violated) {
      EXPECT_TRUE(c.checked) << c.name;
      EXPECT_LT(c.tightness, 1.0) << c.name;
      any_checked_violated = true;
    }
  }
  EXPECT_TRUE(any_checked_violated);

  const std::string text = analysis::certificate_check_text(cc);
  EXPECT_NE(text.find("VIOLATED"), std::string::npos) << text;
  EXPECT_NE(text.find("FAIL"), std::string::npos) << text;
  const std::string json = analysis::certificate_check_json(cc);
  EXPECT_NE(json.find("\"any_violation\":true"), std::string::npos) << json;
}

TEST(CertificateCrossCheck, ControlDivergenceVoidsEveryClaim) {
  // When the quantized run took a different branch than the shadow, the
  // shadow is no longer the reference execution — nothing may be checked
  // (and in particular nothing may be declared violated).
  ir::Module m;
  const polybench::BuiltKernel built = polybench::build_kernel("atax", m);
  const interp::TypeAssignment b32 = interp::TypeAssignment::uniform(
      *built.function, {numrep::kBinary32, 0});
  std::vector<interp::ArrayErrorStats> fake(1);
  fake[0].name = built.function->arrays().front()->name();
  fake[0].stored = true;
  fake[0].elements = 1;
  fake[0].max_abs = 1e6;
  const analysis::CertificateCrossCheck cc =
      analysis::cross_check_certificates(*built.function, b32, fake,
                                         /*control_divergences=*/3);
  EXPECT_FALSE(cc.shadow_is_reference);
  EXPECT_FALSE(cc.any_violation);
  for (const analysis::ArrayCertCheck& c : cc.arrays) {
    EXPECT_FALSE(c.checked) << c.name;
    EXPECT_FALSE(c.violated) << c.name;
  }
  const std::string text = analysis::certificate_check_text(cc);
  EXPECT_NE(text.find("advisory only"), std::string::npos) << text;
}

} // namespace
} // namespace luis
