// Edge-case and failure-injection tests across module boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "interp/interpreter.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/passes.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "numrep/quantize.hpp"
#include "polybench/polybench.hpp"

namespace luis {
namespace {

using interp::ArrayStore;
using interp::RunOptions;
using interp::RunResult;
using interp::TypeAssignment;
using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;

TEST(InterpreterEdge, OutOfBoundsIndexAborts) {
  ir::Module m;
  KernelBuilder kb(m, "oob");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  kb.store(kb.real(1.0), A, {kb.idx(7)}); // statically out of bounds
  ir::Function* f = kb.finish();
  ArrayStore store;
  TypeAssignment binary64;
  EXPECT_DEATH(run_function(*f, binary64, store), "out of bounds");
}

TEST(InterpreterEdge, DivisionByZeroProducesInfNotCrash) {
  ir::Module m;
  KernelBuilder kb(m, "div0");
  Array* A = kb.array("A", {1}, 0.0, 1.0);
  kb.store(kb.real(1.0) / kb.load(A, {kb.idx(0)}), A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  ArrayStore store;
  store["A"] = {0.0};
  TypeAssignment binary64;
  const RunResult r = run_function(*f, binary64, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isinf(store["A"][0]));
}

TEST(InterpreterEdge, FixedDivisionByZeroSaturates) {
  ir::Module m;
  KernelBuilder kb(m, "fixdiv0");
  Array* A = kb.array("A", {1}, 0.0, 1.0);
  kb.store(kb.real(1.0) / kb.load(A, {kb.idx(0)}), A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  ArrayStore store;
  store["A"] = {0.0};
  const TypeAssignment fixed = TypeAssignment::uniform(
      *f, numrep::ConcreteType{numrep::kFixed32, 16});
  const RunResult r = run_function(*f, fixed, store);
  ASSERT_TRUE(r.ok) << r.error;
  // inf quantizes to the fixed format's saturation value.
  EXPECT_TRUE(std::isfinite(store["A"][0]));
  EXPECT_GT(store["A"][0], 30000.0);
}

TEST(InterpreterEdge, ZeroTripLoopExecutesNothing) {
  ir::Module m;
  KernelBuilder kb(m, "empty");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  kb.for_loop("i", 3, 3, [&](IVal i) { kb.store(kb.real(9.0), A, {i}); });
  kb.for_loop("i", 2, 0, [&](IVal i) { kb.store(kb.real(9.0), A, {i}); });
  ir::Function* f = kb.finish();
  ASSERT_TRUE(ir::verify(*f).ok());
  ArrayStore store;
  store["A"] = {1, 2, 3, 4};
  TypeAssignment binary64;
  const RunResult r = run_function(*f, binary64, store);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(store["A"], (std::vector<double>{1, 2, 3, 4}));
}

TEST(InterpreterEdge, CostCountingCanBeDisabled) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  RunOptions opt;
  opt.count_costs = false;
  const RunResult r = run_function(*kernel.function, binary64, store, opt);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.counters.ops.empty());
  EXPECT_EQ(r.counters.non_real_ops, 0);
}

TEST(QuantizeDispatch, CoversEveryFormatClass) {
  using numrep::ConcreteType;
  EXPECT_DOUBLE_EQ(numrep::quantize({numrep::kBinary64, 0}, 1.1), 1.1);
  EXPECT_EQ(numrep::quantize({numrep::kBinary32, 0}, 1.1),
            static_cast<double>(1.1f));
  EXPECT_DOUBLE_EQ(numrep::quantize({numrep::kFixed32, 2}, 1.1), 1.0);
  EXPECT_NEAR(numrep::quantize({numrep::kPosit16, 0}, 1.1), 1.1, 1e-3);
}

TEST(PipelineEdge, EmptyRealKernelStillTunes) {
  // A kernel with no Real arithmetic at all (only index work) must not
  // break any stage.
  ir::Module m;
  KernelBuilder kb(m, "intonly");
  Array* A = kb.array("A", {4}, 0.0, 1.0);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.store(kb.real(1.0), A, {i});
  });
  ir::Function* f = kb.finish();
  const core::PipelineResult tuned = core::tune_kernel(
      *f, platform::intel_table(), core::TuningConfig::balanced());
  EXPECT_TRUE(tuned.allocation.stats.status == ilp::SolveStatus::Optimal);
  ArrayStore store;
  TypeAssignment binary64;
  EXPECT_TRUE(run_function(*f, tuned.allocation.assignment, store).ok);
}

TEST(PipelineEdge, OptimizeIrBeforeTuningPreservesResults) {
  ir::Module m1, m2;
  polybench::BuiltKernel k1 = polybench::build_kernel("trisolv", m1);
  polybench::BuiltKernel k2 = polybench::build_kernel("trisolv", m2);

  core::PipelineOptions plain;
  core::PipelineOptions optimized;
  optimized.optimize_ir = true;
  const core::PipelineResult r1 = core::tune_kernel(
      *k1.function, platform::stm32_table(), core::TuningConfig::fast(), plain);
  const core::PipelineResult r2 =
      core::tune_kernel(*k2.function, platform::stm32_table(),
                        core::TuningConfig::fast(), optimized);
  EXPECT_GT(r2.ir_changes, 0);

  ArrayStore s1 = k1.inputs, s2 = k2.inputs;
  const RunResult run1 = run_function(*k1.function, r1.allocation.assignment, s1);
  const RunResult run2 = run_function(*k2.function, r2.allocation.assignment, s2);
  ASSERT_TRUE(run1.ok && run2.ok);
  // Same numeric outcome; fewer executed steps after simplification.
  EXPECT_EQ(s1.at("x"), s2.at("x"));
  EXPECT_LT(run2.steps, run1.steps);
}

TEST(PrinterEdge, SpecialRealLiteralsSurviveRoundTrip) {
  ir::Module m;
  KernelBuilder kb(m, "lits");
  Array* A = kb.array("A", {4}, -1e30, 1e30);
  kb.store(kb.real(1e-300) + kb.real(-2.5e17) + kb.real(0.1), A, {kb.idx(0)});
  ir::Function* f = kb.finish();
  const std::string text = ir::print_function(*f);
  ir::Module m2;
  const ir::ParseResult parsed = ir::parse_function(m2, text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(ir::print_function(*parsed.function), text);
}

TEST(VerifierEdge, CatchesWrongIndexArity) {
  ir::Module m;
  ir::Function* f = m.add_function("bad");
  ir::BasicBlock* entry = f->add_block("entry");
  ir::Array* a = f->add_array("A", {2, 2});
  // Hand-built load with one index on a rank-2 array.
  entry->append(std::make_unique<ir::Instruction>(
      ir::Opcode::Load, ir::ScalarType::Real,
      std::vector<ir::Value*>{a, f->const_int(0)}));
  entry->append(std::make_unique<ir::Instruction>(
      ir::Opcode::Ret, ir::ScalarType::Void, std::vector<ir::Value*>{}));
  const ir::VerifyResult vr = ir::verify(*f);
  ASSERT_FALSE(vr.ok());
  EXPECT_NE(vr.message().find("index arity"), std::string::npos);
}

} // namespace
} // namespace luis
