#include <gtest/gtest.h>

#include "ir/kernel_builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace luis::ir {
namespace {

/// A small loop-nest kernel used across the structural tests:
/// for i in [0,4): for j in [0,4): C[i][j] = A[i][j] * s + C[i][j]
Function* build_axpy_kernel(Module& m) {
  KernelBuilder kb(m, "axpy2d");
  Array* A = kb.array("A", {4, 4}, -1.0, 1.0);
  Array* C = kb.array("C", {4, 4}, -10.0, 10.0);
  RVal s = kb.real(0.5);
  kb.for_loop("i", 0, 4, [&](IVal i) {
    kb.for_loop("j", 0, 4, [&](IVal j) {
      RVal v = kb.load(A, {i, j}) * s + kb.load(C, {i, j});
      kb.store(v, C, {i, j});
    });
  });
  return kb.finish();
}

TEST(KernelBuilder, ProducesVerifiableLoopNest) {
  Module m;
  Function* f = build_axpy_kernel(m);
  const VerifyResult vr = verify(*f);
  EXPECT_TRUE(vr.ok()) << vr.message();
  // entry + 2 loops x 4 blocks each.
  EXPECT_EQ(f->blocks().size(), 9u);
  EXPECT_EQ(f->arrays().size(), 2u);
}

TEST(KernelBuilder, LoopPhiHasTwoIncomingEdges) {
  Module m;
  Function* f = build_axpy_kernel(m);
  int phi_count = 0;
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (!inst->is_phi()) continue;
      ++phi_count;
      EXPECT_EQ(inst->num_operands(), 2u);
      EXPECT_EQ(inst->type(), ScalarType::Int);
    }
  }
  EXPECT_EQ(phi_count, 2);
}

TEST(KernelBuilder, IfThenElseStructure) {
  Module m;
  KernelBuilder kb(m, "guarded");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.if_then_else(
        i < kb.idx(4), [&] { kb.store(kb.real(1.0), A, {i}); },
        [&] { kb.store(kb.real(2.0), A, {i}); });
  });
  Function* f = kb.finish();
  const VerifyResult vr = verify(*f);
  EXPECT_TRUE(vr.ok()) << vr.message();
}

TEST(KernelBuilder, ScalarCellsAreOneElementArrays) {
  Module m;
  KernelBuilder kb(m, "cells");
  ScalarCell sum = kb.scalar("sum", -100.0, 100.0);
  kb.set(sum, kb.real(0.0));
  kb.set(sum, kb.get(sum) + kb.real(1.0));
  Function* f = kb.finish();
  EXPECT_TRUE(verify(*f).ok());
  Array* cell = f->array_by_name("sum");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->element_count(), 1);
  ASSERT_TRUE(cell->range_annotation().has_value());
  EXPECT_DOUBLE_EQ(cell->range_annotation()->first, -100.0);
}

TEST(Verifier, CatchesUnterminatedBlock) {
  Module m;
  Function* f = m.add_function("bad");
  f->add_block("entry");
  const VerifyResult vr = verify(*f);
  ASSERT_FALSE(vr.ok());
  EXPECT_NE(vr.message().find("not terminated"), std::string::npos);
}

TEST(Verifier, CatchesPhiPredecessorMismatch) {
  Module m;
  Function* f = m.add_function("bad");
  BasicBlock* entry = f->add_block("entry");
  BasicBlock* next = f->add_block("next");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  b.br(next);
  b.set_insertion_block(next);
  Instruction* phi = b.phi(ScalarType::Int);
  phi->add_incoming(f->const_int(0), next); // wrong: should be entry
  b.ret();
  const VerifyResult vr = verify(*f);
  ASSERT_FALSE(vr.ok());
  EXPECT_NE(vr.message().find("incoming blocks"), std::string::npos);
}

TEST(Verifier, CatchesUseBeforeDefInBlock) {
  Module m;
  Function* f = m.add_function("bad");
  BasicBlock* entry = f->add_block("entry");
  // Hand-build: %1 = add %0, 1.0 placed before %0 = add 1.0, 1.0
  auto later = std::make_unique<Instruction>(
      Opcode::Add, ScalarType::Real,
      std::vector<Value*>{f->const_real(1.0), f->const_real(1.0)});
  Instruction* later_ptr = later.get();
  auto first = std::make_unique<Instruction>(
      Opcode::Add, ScalarType::Real,
      std::vector<Value*>{later_ptr, f->const_real(1.0)});
  entry->append(std::move(first));
  entry->append(std::move(later));
  auto ret = std::make_unique<Instruction>(Opcode::Ret, ScalarType::Void,
                                           std::vector<Value*>{});
  entry->append(std::move(ret));
  const VerifyResult vr = verify(*f);
  ASSERT_FALSE(vr.ok());
  EXPECT_NE(vr.message().find("use before def"), std::string::npos);
}

TEST(Verifier, CatchesOperandTypeErrors) {
  Module m;
  Function* f = m.add_function("bad");
  BasicBlock* entry = f->add_block("entry");
  // add with an int operand.
  entry->append(std::make_unique<Instruction>(
      Opcode::Add, ScalarType::Real,
      std::vector<Value*>{f->const_int(1), f->const_real(1.0)}));
  entry->append(std::make_unique<Instruction>(Opcode::Ret, ScalarType::Void,
                                              std::vector<Value*>{}));
  const VerifyResult vr = verify(*f);
  ASSERT_FALSE(vr.ok());
  EXPECT_NE(vr.message().find("must be real"), std::string::npos);
}

TEST(Verifier, CatchesUnreachableBlock) {
  Module m;
  Function* f = m.add_function("bad");
  BasicBlock* entry = f->add_block("entry");
  BasicBlock* island = f->add_block("island");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  b.ret();
  b.set_insertion_block(island);
  b.ret();
  const VerifyResult vr = verify(*f);
  ASSERT_FALSE(vr.ok());
  EXPECT_NE(vr.message().find("unreachable"), std::string::npos);
}

TEST(Dominators, LoopNestStructure) {
  Module m;
  Function* f = build_axpy_kernel(m);
  const auto idom = compute_dominators(*f);
  // Every reachable block is in the dominator map.
  EXPECT_EQ(idom.size(), f->blocks().size());
  // The entry dominates everything.
  for (const auto& bb : f->blocks())
    EXPECT_TRUE(dominates(idom, f->entry(), bb.get())) << bb->name();
  // An inner body never dominates the outer exit.
  const BasicBlock* inner_body = nullptr;
  const BasicBlock* outer_exit = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->name().find("j.body") == 0) inner_body = bb.get();
    if (bb->name().find("i.exit") == 0) outer_exit = bb.get();
  }
  ASSERT_NE(inner_body, nullptr);
  ASSERT_NE(outer_exit, nullptr);
  EXPECT_FALSE(dominates(idom, inner_body, outer_exit));
}

TEST(Printer, RoundTripsThroughParser) {
  Module m1;
  Function* f1 = build_axpy_kernel(m1);
  const std::string text1 = print_function(*f1);

  Module m2;
  const ParseResult parsed = parse_function(m2, text1);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const VerifyResult vr = verify(*parsed.function);
  EXPECT_TRUE(vr.ok()) << vr.message();

  // The round trip is a fixed point of printing.
  const std::string text2 = print_function(*parsed.function);
  EXPECT_EQ(text1, text2);
}

TEST(Printer, RoundTripsControlFlowAndMathOps) {
  Module m1;
  KernelBuilder kb(m1, "mixed");
  Array* A = kb.array("A", {4}, 0.1, 4.0);
  ScalarCell acc = kb.scalar("acc", 0.0, 100.0);
  kb.set(acc, kb.real(0.0));
  kb.for_loop("i", 0, 4, [&](IVal i) {
    RVal x = kb.load(A, {i});
    RVal y = kb.sqrt(x) + kb.exp(kb.neg(x));
    kb.if_then(kb.fcmp(CmpPred::GT, y, kb.real(1.0)),
               [&] { kb.set(acc, kb.get(acc) + y); });
    RVal clamped = kb.select(y > kb.real(2.0), kb.real(2.0), y);
    kb.store(clamped, A, {i});
  });
  Function* f1 = kb.finish();
  ASSERT_TRUE(verify(*f1).ok()) << verify(*f1).message();

  const std::string text1 = print_function(*f1);
  Module m2;
  const ParseResult parsed = parse_function(m2, text1);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(verify(*parsed.function).ok()) << verify(*parsed.function).message();
  EXPECT_EQ(print_function(*parsed.function), text1);
}

TEST(Parser, ReadsArrayAnnotations) {
  Module m;
  const ParseResult parsed = parse_function(m, R"(func @tiny {
  array @A[2][3] range [-2.5, 7]
entry:
  %0 = load @A[0][1]
  store %0, @A[1][2]
  ret
})");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  Array* a = parsed.function->array_by_name("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->rank(), 2u);
  EXPECT_EQ(a->dims()[1], 3);
  ASSERT_TRUE(a->range_annotation().has_value());
  EXPECT_DOUBLE_EQ(a->range_annotation()->first, -2.5);
  EXPECT_DOUBLE_EQ(a->range_annotation()->second, 7.0);
}

TEST(Parser, RejectsMalformedInput) {
  Module m;
  EXPECT_FALSE(parse_function(m, "not a function").ok());
  EXPECT_FALSE(parse_function(m, "func @f {\nentry:\n  %0 = bogus 1, 2\n}").ok());
  EXPECT_FALSE(parse_function(m, "func @f {\nentry:\n  br nowhere\n}").ok());
}

TEST(Function, ConstantInterning) {
  Module m;
  Function* f = m.add_function("f");
  EXPECT_EQ(f->const_real(1.5), f->const_real(1.5));
  EXPECT_NE(f->const_real(1.5), f->const_real(2.5));
  EXPECT_EQ(f->const_int(3), f->const_int(3));
}

TEST(Function, InstructionCountAndLookup) {
  Module m;
  Function* f = build_axpy_kernel(m);
  EXPECT_GE(f->instruction_count(), 20u);
  EXPECT_NE(f->array_by_name("A"), nullptr);
  EXPECT_EQ(f->array_by_name("nope"), nullptr);
  EXPECT_NE(f->block_by_name("entry"), nullptr);
  EXPECT_NE(m.function_by_name("axpy2d"), nullptr);
}

TEST(BasicBlock, InsertBeforePlacesInstruction) {
  Module m;
  Function* f = m.add_function("f");
  BasicBlock* entry = f->add_block("entry");
  IRBuilder b(f);
  b.set_insertion_block(entry);
  Instruction* a = b.add(f->const_real(1.0), f->const_real(2.0));
  b.ret();
  auto cast = std::make_unique<Instruction>(Opcode::Cast, ScalarType::Real,
                                            std::vector<Value*>{a});
  Instruction* inserted = entry->insert_before(entry->instructions()[1].get(),
                                               std::move(cast));
  EXPECT_EQ(entry->instructions()[1].get(), inserted);
  EXPECT_EQ(entry->instructions().size(), 3u);
  EXPECT_TRUE(verify(*f).ok());
}

} // namespace
} // namespace luis::ir
