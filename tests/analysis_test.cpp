#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/pipeline.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/verifier.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"

namespace luis::analysis {
namespace {

using interp::TypeAssignment;
using ir::Array;
using ir::Instruction;
using ir::IVal;
using ir::KernelBuilder;
using ir::Opcode;
using ir::ScalarType;
using numrep::ConcreteType;

/// B[i] = A[i] over 8 elements; both arrays annotated [lo, hi].
ir::Function* build_copy(ir::Module& m, double lo, double hi) {
  KernelBuilder kb(m, "copy");
  Array* A = kb.array("A", {8}, lo, hi);
  Array* B = kb.array("B", {8}, lo, hi);
  kb.for_loop("i", 0, 8, [&](IVal i) { kb.store(kb.load(A, {i}), B, {i}); });
  return kb.finish();
}

/// C[i] = A[i] + B[i] over 8 elements annotated [0, 1].
ir::Function* build_add(ir::Module& m) {
  KernelBuilder kb(m, "add");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  Array* B = kb.array("B", {8}, 0.0, 1.0);
  Array* C = kb.array("C", {8}, 0.0, 2.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.load(B, {i}), C, {i});
  });
  return kb.finish();
}

/// Covers every Real register (arrays + Real instructions) except `skip`.
TypeAssignment assign_all_except(const ir::Function& f, ConcreteType type,
                                 const ir::Value* skip = nullptr) {
  TypeAssignment out;
  for (const auto& arr : f.arrays())
    if (arr.get() != skip) out.set(arr.get(), type);
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ScalarType::Real && inst.get() != skip)
        out.set(inst.get(), type);
  return out;
}

const Instruction* find_inst(const ir::Function& f, Opcode op, int skip = 0) {
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->opcode() == op && skip-- == 0) return inst.get();
  return nullptr;
}

/// Inserts `cast(store_value)` before the first store and rewires the store
/// through it (what core::materialize_casts does, but under test control).
Instruction* insert_cast_before_first_store(ir::Function& f,
                                            bool rewire = true) {
  for (const auto& bb : f.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* store = inst_ptr.get();
      if (store->opcode() != Opcode::Store) continue;
      ir::Value* value = store->operand(0);
      auto cast = std::make_unique<Instruction>(
          Opcode::Cast, ScalarType::Real, std::vector<ir::Value*>{value});
      Instruction* inserted = bb->insert_before(store, std::move(cast));
      if (rewire) store->set_operand(0, inserted);
      return inserted;
    }
  }
  return nullptr;
}

constexpr ConcreteType kF64{numrep::kBinary64, 0};
constexpr ConcreteType kF32{numrep::kBinary32, 0};

// ---------------------------------------------------------------------------
// Registry and clean-run baseline.
// ---------------------------------------------------------------------------

TEST(LintRegistry, ElevenPassesWithUniqueStableCodes) {
  std::set<std::string> codes;
  for (const LintPass& pass : lint_passes()) {
    ASSERT_NE(pass.name, nullptr);
    ASSERT_NE(pass.run, nullptr);
    EXPECT_TRUE(codes.insert(pass.codes).second)
        << pass.codes << " registered twice";
  }
  EXPECT_EQ(codes.size(), 11u);
  EXPECT_TRUE(codes.count("L001"));
  EXPECT_TRUE(codes.count("L007"));
  EXPECT_TRUE(codes.count("L011"));
}

TEST(Lint, CompleteUniformAssignmentIsClean) {
  ir::Module m;
  ir::Function* f = build_add(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const TypeAssignment assignment = assign_all_except(*f, kF64);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_TRUE(engine.empty()) << engine.to_text();
}

// ---------------------------------------------------------------------------
// Negative suite: one hand-broken assignment per diagnostic code.
// ---------------------------------------------------------------------------

TEST(LintNegative, L001MissingRegisterEntry) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 1.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const Instruction* load = find_inst(*f, Opcode::Load);
  ASSERT_NE(load, nullptr);
  const TypeAssignment assignment = assign_all_except(*f, kF64, load);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L001"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Error);
}

TEST(LintNegative, L002DanglingEntryFromAnotherFunction) {
  ir::Module m, other;
  ir::Function* f = build_copy(m, 0.0, 1.0);
  ir::Function* g = build_copy(other, 0.0, 1.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment = assign_all_except(*f, kF64);
  assignment.set(find_inst(*g, Opcode::Load), kF64);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L002"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Warning);
}

TEST(LintNegative, L003ArithmeticOperandTypeMismatch) {
  ir::Module m;
  ir::Function* f = build_add(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment = assign_all_except(*f, kF64);
  // Flip the first load and its array together so the load<->array pair
  // stays consistent and only the add sees a mismatched operand.
  const Instruction* load = find_inst(*f, Opcode::Load);
  ASSERT_NE(load, nullptr);
  assignment.set(load, kF32);
  assignment.set(load->operand(0), kF32);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L003"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Error);
}

TEST(LintNegative, L003FracRealignmentIsLegalBeforeMaterialization) {
  // Registers of one fixed class legitimately carry different fractional
  // splits straight out of the allocator; the materializer realigns them
  // with shift casts. Only a format disagreement is an error at that
  // stage — after materialization the full concrete type must match.
  ir::Module m;
  ir::Function* f = build_add(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 20});
  const Instruction* load = find_inst(*f, Opcode::Load);
  ASSERT_NE(load, nullptr);
  assignment.set(load, ConcreteType{numrep::kFixed32, 21});
  assignment.set(load->operand(0), ConcreteType{numrep::kFixed32, 21});
  EXPECT_EQ(run_lint(*f, assignment, ranges).count_code("L003"), 0);
  LintOptions opts;
  opts.casts_materialized = true;
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges, opts);
  EXPECT_EQ(engine.count_code("L003"), 1) << engine.to_text();
}

TEST(LintNegative, L003StoreMismatchOnlyAfterMaterialization) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 1.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment = assign_all_except(*f, kF64);
  assignment.set(f->array_by_name("B"), kF32);
  // Pre-materialization a store is a legal representation boundary...
  EXPECT_EQ(run_lint(*f, assignment, ranges).count_code("L003"), 0);
  // ...afterwards nothing reconciles the mismatch.
  LintOptions opts;
  opts.casts_materialized = true;
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges, opts);
  EXPECT_EQ(engine.count_code("L003"), 1) << engine.to_text();
}

TEST(LintNegative, L004FracBitsExceedFixMax) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  // Representing 100 needs 7 integer bits, so fix-max is 24. The store is
  // not checked pre-materialization, so only @B itself trips.
  TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 24});
  assignment.set(f->array_by_name("B"), ConcreteType{numrep::kFixed32, 30});
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L004"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Error);
}

TEST(LintNegative, L004CastSaturationIsAWarningNotAnError) {
  // A cast's target trusts its consumer's contract and fixed-point
  // quantization saturates, so a static range wider than the cast target's
  // span must not be a hard error (the allocator legitimately produces
  // this when an array annotation is narrower than the stored expression's
  // static range).
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  Instruction* cast = insert_cast_before_first_store(*f);
  ASSERT_NE(cast, nullptr);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 24});
  assignment.set(cast, ConcreteType{numrep::kFixed32, 30});
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L004"), 1) << engine.to_text();
  EXPECT_FALSE(engine.has_errors()) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Warning);
}

TEST(LintNegative, L005CastDropsGuaranteedBits) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  Instruction* cast = insert_cast_before_first_store(*f);
  ASSERT_NE(cast, nullptr);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  // binary64 -> binary32 over [0, 100] drops ~29 guaranteed bits, far past
  // the default threshold of 12.
  TypeAssignment assignment = assign_all_except(*f, kF64);
  assignment.set(cast, kF32);
  assignment.set(f->array_by_name("B"), kF32);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L005"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Warning);
}

TEST(LintNegative, L005DoubleRoundingChain) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  // load -> cast(binary32) -> cast(binary64) -> store: the middle format
  // is strictly the least precise of the chain.
  Instruction* inner = insert_cast_before_first_store(*f);
  Instruction* outer = insert_cast_before_first_store(*f);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(outer->operand(0), inner);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment = assign_all_except(*f, kF64);
  assignment.set(inner, kF32);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  // The inner cast's own IEBW drop plus the double-rounding finding.
  EXPECT_EQ(engine.count_code("L005"), 2) << engine.to_text();
  bool found = false;
  for (const Diagnostic& d : engine.diagnostics())
    if (d.message.find("double rounding") != std::string::npos) found = true;
  EXPECT_TRUE(found) << engine.to_text();
}

TEST(LintNegative, L006IdentityCast) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 1.0);
  Instruction* cast = insert_cast_before_first_store(*f);
  ASSERT_NE(cast, nullptr);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const TypeAssignment assignment = assign_all_except(*f, kF64);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L006"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Warning);
}

TEST(LintNegative, L006DeadCastIsANote) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 1.0);
  // Insert the cast but keep the store on the original value: an upcast
  // (binary32 -> binary64) nothing consumes.
  Instruction* cast = insert_cast_before_first_store(*f, /*rewire=*/false);
  ASSERT_NE(cast, nullptr);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment = assign_all_except(*f, kF32);
  assignment.set(cast, kF64);
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L006"), 1) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Note);
}

TEST(LintNegative, L007RangeExceedsFloatFormat) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 1e6);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  // binary16 tops out at 65504; [0, 1e6] guarantees overflow to infinity.
  TypeAssignment assignment = assign_all_except(*f, kF64);
  assignment.set(f->array_by_name("B"), ConcreteType{numrep::kBinary16, 0});
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L007"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Error);
}

TEST(LintNegative, L007LiteralExceedsConsumerFormat) {
  ir::Module m;
  KernelBuilder kb(m, "lit");
  Array* B = kb.array("B", {8}, 0.0, 100.0);
  kb.for_loop("i", 0, 8, [&](IVal i) { kb.store(kb.real(300.0), B, {i}); });
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  // fix32.24 spans [-128, 128): @B's annotated range fits but the literal
  // coefficient 300 does not — the allocator's feasibility check only sees
  // register ranges, which is exactly the gap L007 closes.
  const TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 24});
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges);
  EXPECT_EQ(engine.count_code("L007"), 1) << engine.to_text();
  EXPECT_EQ(engine.size(), 1u) << engine.to_text();
  EXPECT_EQ(engine.diagnostics()[0].severity, Severity::Warning);
}

// ---------------------------------------------------------------------------
// Options, text and JSON output.
// ---------------------------------------------------------------------------

TEST(Lint, DisabledCodesSuppressTheirPass) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 24});
  assignment.set(f->array_by_name("B"), ConcreteType{numrep::kFixed32, 30});
  LintOptions opts;
  opts.disabled_codes = {"L004"};
  const DiagnosticEngine engine = run_lint(*f, assignment, ranges, opts);
  EXPECT_EQ(engine.count_code("L004"), 0) << engine.to_text();
  EXPECT_TRUE(engine.empty()) << engine.to_text();
}

TEST(Lint, TextReportCarriesStableCodeAndSummary) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 24});
  assignment.set(f->array_by_name("B"), ConcreteType{numrep::kFixed32, 30});
  const std::string text = run_lint(*f, assignment, ranges).to_text();
  EXPECT_NE(text.find("[L004]"), std::string::npos) << text;
  EXPECT_NE(text.find("error"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error"), std::string::npos) << text;
}

TEST(Lint, JsonReportHasOneObjectPerDiagnostic) {
  ir::Module m;
  ir::Function* f = build_copy(m, 0.0, 100.0);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  TypeAssignment assignment =
      assign_all_except(*f, ConcreteType{numrep::kFixed32, 24});
  assignment.set(f->array_by_name("B"), ConcreteType{numrep::kFixed32, 30});
  const std::string json = run_lint(*f, assignment, ranges).to_json();
  EXPECT_NE(json.find("\"code\": \"L004\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\": \"fixed-point-overflow\""),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"fix_hint\""), std::string::npos) << json;
  EXPECT_EQ(json.front(), '[');
}

// ---------------------------------------------------------------------------
// Pipeline integration: the allocator's output must lint clean.
// ---------------------------------------------------------------------------

TEST(LintPipeline, ReportsTimingAndOkFlag) {
  ir::Module m;
  ir::Function* f = build_add(m);
  core::PipelineOptions opt;
  opt.materialize_casts = true;
  opt.lint = core::LintMode::Error;
  const core::PipelineResult r = core::tune_kernel(
      *f, platform::stm32_table(), core::TuningConfig::balanced(), opt);
  EXPECT_GE(r.timings.lint_seconds, 0.0);
  EXPECT_TRUE(r.lint_ok) << r.lint.to_text();
  EXPECT_FALSE(r.lint.has_errors()) << r.lint.to_text();
}

// Acceptance: every PolyBench kernel under every preset allocates an
// assignment that carries zero error-severity diagnostics, casts included.
class LintKernelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(LintKernelSweep, AllocatorOutputLintsClean) {
  const core::TuningConfig configs[] = {core::TuningConfig::precise(),
                                        core::TuningConfig::balanced(),
                                        core::TuningConfig::fast()};
  const char* names[] = {"Precise", "Balanced", "Fast"};
  for (int c = 0; c < 3; ++c) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(GetParam(), m);
    ASSERT_NE(kernel.function, nullptr);
    core::PipelineOptions opt;
    opt.materialize_casts = true;
    opt.lint = core::LintMode::Error;
    const core::PipelineResult r = core::tune_kernel(
        *kernel.function, platform::stm32_table(), configs[c], opt);
    EXPECT_TRUE(r.lint_ok) << GetParam() << " x " << names[c] << ":\n"
                           << r.lint.to_text();
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolyBench, LintKernelSweep,
    ::testing::ValuesIn(std::vector<std::string>(
        polybench::kernel_names().begin(), polybench::kernel_names().end())),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

} // namespace
} // namespace luis::analysis
