// Tests of the mixed-format fixed point arithmetic and the interpreter's
// exact integer execution mode.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interpreter.hpp"
#include "numrep/fixed_point.hpp"
#include "polybench/polybench.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "vra/range_analysis.hpp"
#include "core/pipeline.hpp"

namespace luis::numrep {
namespace {

TEST(MixedFixed, AddAlignsOperands) {
  const FixedSpec a_spec{32, 20, true}, b_spec{32, 8, true}, out{32, 12, true};
  const auto a = FixedValue::from_double(a_spec, 1.25);
  const auto b = FixedValue::from_double(b_spec, 100.5);
  EXPECT_DOUBLE_EQ(fixed_add_mixed(a, b, out).to_double(), 101.75);
  EXPECT_DOUBLE_EQ(fixed_sub_mixed(b, a, out).to_double(), 99.25);
}

TEST(MixedFixed, MulFoldsRescale) {
  const FixedSpec a_spec{32, 16, true}, b_spec{32, 10, true}, out{32, 12, true};
  const auto a = FixedValue::from_double(a_spec, 3.5);
  const auto b = FixedValue::from_double(b_spec, -2.25);
  EXPECT_DOUBLE_EQ(fixed_mul_mixed(a, b, out).to_double(), -7.875);
}

TEST(MixedFixed, DivScalesDividend) {
  const FixedSpec a_spec{32, 16, true}, b_spec{32, 8, true}, out{32, 16, true};
  const auto a = FixedValue::from_double(a_spec, 7.5);
  const auto b = FixedValue::from_double(b_spec, 2.5);
  EXPECT_DOUBLE_EQ(fixed_div_mixed(a, b, out).to_double(), 3.0);
  // Division by zero saturates by dividend sign.
  const auto zero = FixedValue::from_double(b_spec, 0.0);
  EXPECT_DOUBLE_EQ(fixed_div_mixed(a, zero, out).to_double(), out.max_value());
}

TEST(MixedFixed, SaturatesAtOutputRange) {
  const FixedSpec wide{32, 4, true}, narrow{16, 8, true};
  const auto big = FixedValue::from_double(wide, 1000.0);
  EXPECT_DOUBLE_EQ(fixed_add_mixed(big, big, narrow).to_double(),
                   narrow.max_value());
  EXPECT_DOUBLE_EQ(fixed_mul_mixed(big, big, narrow).to_double(),
                   narrow.max_value());
}

// Property: the exact mixed ops agree with compute-in-double-then-quantize
// to within one output ULP (the double path's extra rounding).
class MixedFixedSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixedFixedSweep, AgreesWithDoubleModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 2000; ++trial) {
    const FixedSpec sa{32, static_cast<int>(rng.next_int(4, 24)), true};
    const FixedSpec sb{32, static_cast<int>(rng.next_int(4, 24)), true};
    const FixedSpec so{32, static_cast<int>(rng.next_int(4, 24)), true};
    const double av = quantize_fixed(sa, rng.next_double(-30, 30));
    const double bv = quantize_fixed(sb, rng.next_double(-30, 30));
    const auto a = FixedValue::from_double(sa, av);
    const auto b = FixedValue::from_double(sb, bv);

    const double ulp = so.resolution();
    EXPECT_NEAR(fixed_add_mixed(a, b, so).to_double(),
                quantize_fixed(so, av + bv), ulp);
    EXPECT_NEAR(fixed_sub_mixed(a, b, so).to_double(),
                quantize_fixed(so, av - bv), ulp);
    EXPECT_NEAR(fixed_mul_mixed(a, b, so).to_double(),
                quantize_fixed(so, av * bv), ulp);
    if (std::abs(bv) > 0.5) {
      EXPECT_NEAR(fixed_div_mixed(a, b, so).to_double(),
                  quantize_fixed(so, av / bv), ulp)
          << av << " / " << bv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedFixedSweep, ::testing::Values(1, 2, 3));

} // namespace
} // namespace luis::numrep

namespace luis::interp {
namespace {

TEST(ExactFixedExecution, MatchesDoubleModelOnTunedKernels) {
  for (const char* name : {"gemm", "atax", "jacobi-2d"}) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m);
    const core::PipelineResult tuned = core::tune_kernel(
        *kernel.function, platform::stm32_table(), core::TuningConfig::fast());

    ArrayStore by_double = kernel.inputs;
    const RunResult r1 =
        run_function(*kernel.function, tuned.allocation.assignment, by_double);
    ASSERT_TRUE(r1.ok) << r1.error;

    ArrayStore by_integer = kernel.inputs;
    RunOptions opt;
    opt.exact_fixed_arithmetic = true;
    const RunResult r2 = run_function(*kernel.function,
                                      tuned.allocation.assignment, by_integer,
                                      opt);
    ASSERT_TRUE(r2.ok) << r2.error;

    // Same dynamic profile, near-identical numerics.
    EXPECT_EQ(r1.counters.ops, r2.counters.ops) << name;
    for (const std::string& out : kernel.outputs) {
      const double mpe =
          mean_percentage_error(by_double.at(out), by_integer.at(out));
      EXPECT_LT(mpe, 1e-3) << name << "/" << out;
    }
  }
}

TEST(ExactFixedExecution, FallsBackForNonFixedFormats) {
  ir::Module m;
  polybench::BuiltKernel kernel = polybench::build_kernel("gemm", m);
  TypeAssignment binary64; // nothing fixed: the exact path must not engage
  ArrayStore a = kernel.inputs, b = kernel.inputs;
  RunOptions opt;
  opt.exact_fixed_arithmetic = true;
  const RunResult r1 = run_function(*kernel.function, binary64, a);
  const RunResult r2 = run_function(*kernel.function, binary64, b, opt);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(a.at("C"), b.at("C"));
}

} // namespace
} // namespace luis::interp
