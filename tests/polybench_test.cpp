#include <gtest/gtest.h>

#include <cmath>

#include "core/cast_materializer.hpp"
#include "core/pipeline.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

namespace luis::polybench {
namespace {

using interp::ArrayStore;
using interp::RunResult;
using interp::TypeAssignment;

TEST(PolyBench, ThirtyKernelsRegistered) {
  EXPECT_EQ(kernel_names().size(), 30u);
}

TEST(PolyBench, UnknownKernelNameDies) {
  ir::Module m;
  EXPECT_DEATH(build_kernel("not-a-kernel", m), "unknown PolyBench kernel");
}

// Every kernel must build, verify, execute in binary64, produce finite
// outputs, and carry profiled annotations that cover its inputs.
class KernelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelSweep, BuildsVerifiesAndRuns) {
  ir::Module m;
  BuiltKernel kernel = build_kernel(GetParam(), m);
  ASSERT_NE(kernel.function, nullptr);
  const ir::VerifyResult vr = ir::verify(*kernel.function);
  ASSERT_TRUE(vr.ok()) << vr.message();

  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  const RunResult run = run_function(*kernel.function, binary64, store);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_GT(run.counters.total_real_ops(), 0);

  ASSERT_FALSE(kernel.outputs.empty());
  for (const std::string& out : kernel.outputs) {
    ASSERT_TRUE(store.count(out)) << out;
    for (double v : store.at(out)) EXPECT_TRUE(std::isfinite(v)) << out;
  }
}

TEST_P(KernelSweep, ProfiledAnnotationsCoverExecution) {
  ir::Module m;
  BuiltKernel kernel = build_kernel(GetParam(), m);
  // Re-profile and check the stored annotations contain the observation.
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  interp::RunOptions opt;
  opt.track_array_ranges = true;
  const RunResult run = run_function(*kernel.function, binary64, store, opt);
  ASSERT_TRUE(run.ok) << run.error;
  for (const auto& arr : kernel.function->arrays()) {
    ASSERT_TRUE(arr->range_annotation().has_value()) << arr->name();
    const auto [lo, hi] = *arr->range_annotation();
    const auto it = run.array_ranges.find(arr->name());
    if (it == run.array_ranges.end()) continue;
    EXPECT_LE(lo, it->second.first) << arr->name();
    EXPECT_GE(hi, it->second.second) << arr->name();
  }
}

TEST_P(KernelSweep, BinaryThirtyTwoErrorIsModerate) {
  // Sanity of the numerics substrate: uniform binary32 execution stays
  // within a few percent of binary64 for most kernels (and finite always).
  ir::Module m;
  BuiltKernel kernel = build_kernel(GetParam(), m);

  ArrayStore ref = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, ref).ok);

  ArrayStore tuned = kernel.inputs;
  const TypeAssignment all32 = TypeAssignment::uniform(
      *kernel.function, numrep::ConcreteType{numrep::kBinary32, 0});
  ASSERT_TRUE(run_function(*kernel.function, all32, tuned).ok);

  // Kernels the paper itself reports as MPE outliers: the relative-error
  // metric explodes when reference outputs pass near zero (gramschmidt,
  // fdtd-2d) or when the recursion amplifies rounding (durbin).
  const bool outlier = GetParam() == "gramschmidt" ||
                       GetParam() == "fdtd-2d" || GetParam() == "durbin";
  for (const std::string& out : kernel.outputs) {
    const double mpe = mean_percentage_error(ref.at(out), tuned.at(out));
    EXPECT_TRUE(std::isfinite(mpe)) << out;
    if (!outlier) EXPECT_LT(mpe, 5.0) << out;
  }
}


// The textual IR of every kernel round-trips through the parser and stays
// a fixed point of printing.
TEST_P(KernelSweep, PrintParseRoundTrip) {
  ir::Module m1;
  BuiltKernel kernel = build_kernel(GetParam(), m1, /*annotate=*/false);
  const std::string text1 = ir::print_function(*kernel.function);

  ir::Module m2;
  const ir::ParseResult parsed = ir::parse_function(m2, text1);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const ir::VerifyResult vr = ir::verify(*parsed.function);
  ASSERT_TRUE(vr.ok()) << vr.message();
  EXPECT_EQ(ir::print_function(*parsed.function), text1);
}

// A parsed kernel executes identically to the built one.
TEST_P(KernelSweep, ParsedKernelExecutesIdentically) {
  ir::Module m1;
  BuiltKernel kernel = build_kernel(GetParam(), m1, /*annotate=*/false);

  ir::Module m2;
  const ir::ParseResult parsed =
      ir::parse_function(m2, ir::print_function(*kernel.function));
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  ArrayStore s1 = kernel.inputs, s2 = kernel.inputs;
  TypeAssignment binary64;
  const RunResult r1 = run_function(*kernel.function, binary64, s1);
  const RunResult r2 = run_function(*parsed.function, binary64, s2);
  ASSERT_TRUE(r1.ok && r2.ok) << r1.error << r2.error;
  for (const std::string& out : kernel.outputs)
    EXPECT_EQ(s1.at(out), s2.at(out)) << out;
  EXPECT_EQ(r1.counters.non_real_ops, r2.counters.non_real_ops);
}

// Materializing the casts of an ILP allocation keeps the IR verifiable and
// the tuned outputs bit-identical.
TEST_P(KernelSweep, CastMaterializationPreservesTunedSemantics) {
  ir::Module m1, m2;
  BuiltKernel k1 = build_kernel(GetParam(), m1);
  BuiltKernel k2 = build_kernel(GetParam(), m2);

  const vra::RangeMap ranges = vra::analyze_ranges(*k1.function);
  const core::AllocationResult alloc = core::allocate_ilp(
      *k1.function, ranges, platform::stm32_table(), core::TuningConfig::fast());

  // Mirror the assignment onto the twin function by array/instruction order.
  interp::TypeAssignment mirrored;
  {
    auto it1 = k1.function->arrays().begin();
    auto it2 = k2.function->arrays().begin();
    for (; it1 != k1.function->arrays().end(); ++it1, ++it2)
      mirrored.set(it2->get(), alloc.assignment.of(it1->get()));
    auto b1 = k1.function->blocks().begin();
    auto b2 = k2.function->blocks().begin();
    for (; b1 != k1.function->blocks().end(); ++b1, ++b2) {
      auto i1 = (*b1)->instructions().begin();
      auto i2 = (*b2)->instructions().begin();
      for (; i1 != (*b1)->instructions().end(); ++i1, ++i2)
        if ((*i1)->type() == ir::ScalarType::Real)
          mirrored.set(i2->get(), alloc.assignment.of(i1->get()));
    }
  }

  ArrayStore direct = k1.inputs;
  const RunResult r1 = run_function(*k1.function, alloc.assignment, direct);
  ASSERT_TRUE(r1.ok) << r1.error;

  const int inserted = core::materialize_casts(*k2.function, mirrored);
  EXPECT_GE(inserted, 0);
  const ir::VerifyResult vr = ir::verify(*k2.function);
  ASSERT_TRUE(vr.ok()) << vr.message();

  ArrayStore materialized = k2.inputs;
  const RunResult r2 = run_function(*k2.function, mirrored, materialized);
  ASSERT_TRUE(r2.ok) << r2.error;
  for (const std::string& out : k1.outputs)
    EXPECT_EQ(direct.at(out), materialized.at(out)) << out;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::ValuesIn(std::vector<std::string>(
                             kernel_names().begin(), kernel_names().end())),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(PolyBench, GemmMatchesDirectReference) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("gemm", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);

  // Direct C++ evaluation of C = alpha*A*B + beta*C.
  const std::int64_t ni = 16, nj = 18, nk = 20;
  const auto& A = kernel.inputs.at("A");
  const auto& B = kernel.inputs.at("B");
  const auto& C0 = kernel.inputs.at("C");
  for (std::int64_t i = 0; i < ni; ++i) {
    for (std::int64_t j = 0; j < nj; ++j) {
      double acc = 1.2 * C0[static_cast<std::size_t>(i * nj + j)];
      for (std::int64_t kk = 0; kk < nk; ++kk)
        acc += 1.5 * A[static_cast<std::size_t>(i * nk + kk)] *
               B[static_cast<std::size_t>(kk * nj + j)];
      EXPECT_NEAR(store.at("C")[static_cast<std::size_t>(i * nj + j)], acc, 1e-9);
    }
  }
}

TEST(PolyBench, CholeskyReconstructsInput) {
  // L * L^T must reproduce the SPD input (lower triangle semantics).
  ir::Module m;
  BuiltKernel kernel = build_kernel("cholesky", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);
  const std::int64_t N = 18;
  const auto& L = store.at("A");
  const auto& orig = kernel.inputs.at("A");
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk <= j; ++kk)
        acc += L[static_cast<std::size_t>(i * N + kk)] *
               L[static_cast<std::size_t>(j * N + kk)];
      EXPECT_NEAR(acc, orig[static_cast<std::size_t>(i * N + j)], 1e-6);
    }
  }
}

TEST(PolyBench, FloydWarshallComputesShortestPaths) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("floyd-warshall", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);
  // Reference Floyd-Warshall on the same input.
  const std::int64_t N = 16;
  std::vector<double> ref = kernel.inputs.at("paths");
  for (std::int64_t kk = 0; kk < N; ++kk)
    for (std::int64_t i = 0; i < N; ++i)
      for (std::int64_t j = 0; j < N; ++j)
        ref[static_cast<std::size_t>(i * N + j)] =
            std::min(ref[static_cast<std::size_t>(i * N + j)],
                     ref[static_cast<std::size_t>(i * N + kk)] +
                         ref[static_cast<std::size_t>(kk * N + j)]);
  EXPECT_EQ(store.at("paths"), ref);
}

TEST(PolyBench, TrisolvSolvesTheSystem) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("trisolv", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);
  const std::int64_t N = 24;
  const auto& L = kernel.inputs.at("L");
  const auto& b = kernel.inputs.at("b");
  const auto& x = store.at("x");
  for (std::int64_t i = 0; i < N; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j <= i; ++j)
      acc += L[static_cast<std::size_t>(i * N + j)] * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(acc, b[static_cast<std::size_t>(i)], 1e-7) << i;
  }
}

TEST(PolyBench, DatasetSizePresetsScaleExtents) {
  ir::Module m1, m2, m3;
  BuiltKernel mini = build_kernel("gemm", m1, true, DatasetSize::Mini);
  BuiltKernel small = build_kernel("gemm", m2, true, DatasetSize::Small);
  BuiltKernel medium = build_kernel("gemm", m3, false, DatasetSize::Medium);
  const auto dims = [](const BuiltKernel& k) {
    return k.function->array_by_name("C")->dims();
  };
  EXPECT_EQ(dims(small)[0], 2 * dims(mini)[0]);
  EXPECT_EQ(dims(medium)[1], 4 * dims(mini)[1]);

  // Scaled kernels still verify and run.
  EXPECT_TRUE(ir::verify(*small.function).ok());
  ArrayStore store = small.inputs;
  TypeAssignment binary64;
  const RunResult run = run_function(*small.function, binary64, store);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_GT(run.counters.total_real_ops(),
            4 * 16 * 18 * 20); // more work than Mini's whole gemm
}

TEST(PolyBench, CovarianceMatchesDirectReference) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("covariance", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);

  const std::int64_t M = 14, N = 18;
  std::vector<double> data = kernel.inputs.at("data");
  std::vector<double> mean(static_cast<std::size_t>(M), 0.0);
  for (std::int64_t j = 0; j < M; ++j) {
    for (std::int64_t i = 0; i < N; ++i)
      mean[static_cast<std::size_t>(j)] += data[static_cast<std::size_t>(i * M + j)];
    mean[static_cast<std::size_t>(j)] /= static_cast<double>(N);
  }
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < M; ++j)
      data[static_cast<std::size_t>(i * M + j)] -= mean[static_cast<std::size_t>(j)];
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t j = i; j < M; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < N; ++kk)
        acc += data[static_cast<std::size_t>(kk * M + i)] *
               data[static_cast<std::size_t>(kk * M + j)];
      acc /= static_cast<double>(N - 1);
      EXPECT_NEAR(store.at("cov")[static_cast<std::size_t>(i * M + j)], acc, 1e-9);
      EXPECT_NEAR(store.at("cov")[static_cast<std::size_t>(j * M + i)], acc, 1e-9);
    }
  }
}

TEST(PolyBench, Jacobi1dMatchesDirectReference) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("jacobi-1d", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);

  const std::int64_t N = 30, T = 8;
  std::vector<double> A = kernel.inputs.at("A");
  std::vector<double> B = kernel.inputs.at("B");
  for (std::int64_t t = 0; t < T; ++t) {
    for (std::int64_t i = 1; i < N - 1; ++i)
      B[static_cast<std::size_t>(i)] =
          0.33333 * (A[static_cast<std::size_t>(i - 1)] +
                     A[static_cast<std::size_t>(i)] +
                     A[static_cast<std::size_t>(i + 1)]);
    for (std::int64_t i = 1; i < N - 1; ++i)
      A[static_cast<std::size_t>(i)] =
          0.33333 * (B[static_cast<std::size_t>(i - 1)] +
                     B[static_cast<std::size_t>(i)] +
                     B[static_cast<std::size_t>(i + 1)]);
  }
  for (std::int64_t i = 0; i < N; ++i)
    EXPECT_DOUBLE_EQ(store.at("A")[static_cast<std::size_t>(i)],
                     A[static_cast<std::size_t>(i)]);
}

TEST(PolyBench, DurbinMatchesDirectReference) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("durbin", m);
  ArrayStore store = kernel.inputs;
  TypeAssignment binary64;
  ASSERT_TRUE(run_function(*kernel.function, binary64, store).ok);

  const std::int64_t N = 22;
  const std::vector<double>& r = kernel.inputs.at("r");
  std::vector<double> y(static_cast<std::size_t>(N), 0.0);
  std::vector<double> z(static_cast<std::size_t>(N), 0.0);
  double alpha = -r[0], beta = 1.0;
  y[0] = -r[0];
  for (std::int64_t k = 1; k < N; ++k) {
    beta = (1.0 - alpha * alpha) * beta;
    double sum = 0.0;
    for (std::int64_t i = 0; i < k; ++i)
      sum += r[static_cast<std::size_t>(k - i - 1)] * y[static_cast<std::size_t>(i)];
    alpha = -(r[static_cast<std::size_t>(k)] + sum) / beta;
    for (std::int64_t i = 0; i < k; ++i)
      z[static_cast<std::size_t>(i)] =
          y[static_cast<std::size_t>(i)] +
          alpha * y[static_cast<std::size_t>(k - i - 1)];
    for (std::int64_t i = 0; i < k; ++i)
      y[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)];
    y[static_cast<std::size_t>(k)] = alpha;
  }
  for (std::int64_t i = 0; i < N; ++i)
    EXPECT_DOUBLE_EQ(store.at("y")[static_cast<std::size_t>(i)],
                     y[static_cast<std::size_t>(i)]);
}

TEST(PolyBench, EndToEndTuningOfGemmOnStm32) {
  ir::Module m;
  BuiltKernel kernel = build_kernel("gemm", m);

  ArrayStore ref = kernel.inputs;
  TypeAssignment binary64;
  const RunResult base = run_function(*kernel.function, binary64, ref);
  ASSERT_TRUE(base.ok);
  const double t_base =
      platform::simulated_time(base.counters, platform::stm32_table());

  core::PipelineOptions opt;
  const core::PipelineResult tuned = core::tune_kernel(
      *kernel.function, platform::stm32_table(), core::TuningConfig::fast(), opt);

  ArrayStore out = kernel.inputs;
  const RunResult run =
      run_function(*kernel.function, tuned.allocation.assignment, out);
  ASSERT_TRUE(run.ok) << run.error;
  const double t_tuned =
      platform::simulated_time(run.counters, platform::stm32_table());
  EXPECT_LT(t_tuned, t_base);
  EXPECT_LT(mean_percentage_error(ref.at("C"), out.at("C")), 1.0);
}

} // namespace
} // namespace luis::polybench
