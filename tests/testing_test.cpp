// Tests for the fuzzing harness itself: the generators keep their
// invariants, the enumeration oracle is right on models solved by hand,
// the differential property holds across a large random campaign (the
// PR's acceptance bar), and the shrinkers actually minimize — including
// reducing a deliberately injected branch & bound bug to a tiny repro.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <set>

#include "ilp/branch_and_bound.hpp"
#include "ilp/lp_writer.hpp"
#include "testing/fuzz.hpp"
#include "testing/ilp_fuzz.hpp"
#include "testing/ir_fuzz.hpp"
#include "testing/numrep_fuzz.hpp"

namespace luis::testing {
namespace {

TEST(DeriveSeed, IsDeterministicAndDecorrelated) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t trial = 0; trial < 1000; ++trial)
    seen.insert(derive_seed(42, trial));
  EXPECT_EQ(seen.size(), 1000u); // no collisions among nearby trials
  EXPECT_NE(derive_seed(1, 7), derive_seed(2, 7));
}

TEST(EnumerationOracle, FindsAKnownOptimum) {
  ilp::Model m;
  const ilp::VarId x = m.add_integer("x", 0, 2);
  const ilp::VarId y = m.add_integer("y", 0, 2);
  m.add_le(ilp::LinearExpr().add(x, 1.0).add(y, 1.0), 3.0);
  m.set_objective(ilp::Direction::Maximize,
                  ilp::LinearExpr().add(x, 2.0).add(y, 1.0));
  const EnumerationResult r = enumerate_optimum(m);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.objective, 5.0); // x = 2, y = 1
  EXPECT_EQ(r.points, 9);      // the full 3 x 3 box was visited
  EXPECT_TRUE(m.is_feasible(r.values));
}

TEST(EnumerationOracle, ProvesInfeasibility) {
  ilp::Model m;
  const ilp::VarId x = m.add_integer("x", 0, 2);
  m.add_ge(ilp::LinearExpr().add(x, 1.0), 5.0);
  m.set_objective(ilp::Direction::Minimize, ilp::LinearExpr().add(x, 1.0));
  EXPECT_FALSE(enumerate_optimum(m).feasible);
}

TEST(IlpGenerator, KeepsTheEnumerableInvariants) {
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Rng rng(derive_seed(0x6E17E2, trial));
    const ilp::Model m = random_ilp_model(rng);
    ASSERT_GE(m.num_variables(), 1u);
    for (const ilp::Variable& v : m.variables()) {
      EXPECT_NE(v.kind, ilp::VarKind::Continuous);
      EXPECT_TRUE(std::isfinite(v.lower) && std::isfinite(v.upper));
      EXPECT_LE(v.lower, v.upper);
    }
  }
}

// Acceptance bar: a large random campaign in the smoke suite, with every
// instance agreeing across all four oracles (enumeration, presolve
// on/off, LP-text round trip, cache hit vs fresh solve).
TEST(IlpOracles, TenThousandInstancesAgreeAcrossAllFourOracles) {
  for (long trial = 0; trial < 10000; ++trial) {
    Rng rng(derive_seed(0xACCE5501, static_cast<std::uint64_t>(trial)));
    const ilp::Model m = random_ilp_model(rng);
    const CheckResult r = check_ilp_instance(m);
    ASSERT_TRUE(r.ok) << "trial " << trial << ": " << r.message << "\n"
                      << ilp::to_lp_format(m);
  }
}

TEST(IlpShrinker, IsGreedyMinimalUnderAStructuralPredicate) {
  Rng rng(derive_seed(0x5321, 0));
  IlpGenOptions gen;
  gen.max_variables = 8;
  gen.max_constraints = 8;
  const ilp::Model m = random_ilp_model(rng, gen);
  // "Fails" whenever at least three variables survive: the shrinker must
  // land on exactly three, with every other shrinkable piece removed.
  const auto still_fails = [](const ilp::Model& c) {
    return c.num_variables() >= 3;
  };
  ASSERT_TRUE(still_fails(m));
  const IlpShrinkResult shrunk = shrink_ilp_model(m, still_fails);
  EXPECT_EQ(shrunk.model.num_variables(), 3u);
  EXPECT_EQ(shrunk.model.num_constraints(), 0u);
  EXPECT_TRUE(shrunk.model.objective().terms().empty());
  for (const ilp::Variable& v : shrunk.model.variables())
    EXPECT_EQ(v.lower, v.upper); // boxes narrowed to a point
}

/// A deliberately broken MILP solver: it gives branch & bound a single
/// node and then lies, relabeling the truncated search as Optimal. On any
/// instance that needs real branching, its answer disagrees with the
/// enumeration oracle.
ilp::Solution lying_node_starved_solver(const ilp::Model& m,
                                        const ilp::BranchAndBoundOptions& o) {
  ilp::BranchAndBoundOptions starved = o;
  starved.max_nodes = 1;
  ilp::Solution s = ilp::solve_milp(m, starved);
  if (s.status == ilp::SolveStatus::NodeLimit)
    s.status = ilp::SolveStatus::Optimal;
  return s;
}

// Acceptance bar: the harness catches an injected branch & bound bug and
// the shrinker reduces the triggering instance to at most five variables.
TEST(IlpShrinker, ReducesAnInjectedBranchAndBoundBugToAtMostFiveVariables) {
  IlpCheckOptions broken;
  broken.solve = lying_node_starved_solver;
  IlpGenOptions gen;
  gen.max_variables = 8;
  gen.max_constraints = 8;
  gen.max_bound_span = 4;

  std::optional<ilp::Model> failing;
  for (std::uint64_t trial = 0; trial < 500 && !failing; ++trial) {
    Rng rng(derive_seed(0xB4DB0B, trial));
    ilp::Model m = random_ilp_model(rng, gen);
    if (!check_ilp_instance(m, broken).ok) failing = std::move(m);
  }
  ASSERT_TRUE(failing.has_value())
      << "no instance exposed the injected bug in 500 trials";

  const auto still_fails = [&broken](const ilp::Model& c) {
    return !check_ilp_instance(c, broken).ok;
  };
  const IlpShrinkResult shrunk = shrink_ilp_model(*failing, still_fails);
  EXPECT_TRUE(still_fails(shrunk.model));
  EXPECT_LE(shrunk.model.num_variables(), 5u)
      << ilp::to_lp_format(shrunk.model);
  // The minimized repro is a genuine bug witness: the honest solver
  // passes every oracle on it.
  EXPECT_TRUE(check_ilp_instance(shrunk.model).ok)
      << ilp::to_lp_format(shrunk.model);
}

TEST(IrGenerator, SatisfiesTheIrPropertySet) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    const std::uint64_t seed = derive_seed(0x1234, trial);
    Rng rng(seed);
    ir::Module module;
    const GeneratedIr generated = generate_ir_kernel(module, rng);
    Rng type_rng(seed ^ 0x7E57ull);
    const CheckResult r =
        check_ir_instance(*generated.function, generated.inputs, type_rng);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
  }
}

TEST(IrShrinker, MinimizesTheGenerationRecipe) {
  // "Fails" while the recipe still allows depth-2 expressions: the
  // shrinker must land on the boundary exactly and fully minimize every
  // other knob, which the predicate leaves unconstrained.
  const auto still_fails = [](const IrGenOptions& o) {
    return o.expr_depth >= 2;
  };
  const IrShrinkResult shrunk = shrink_ir_options(IrGenOptions{}, still_fails);
  EXPECT_TRUE(still_fails(shrunk.options));
  EXPECT_EQ(shrunk.options.expr_depth, 2);
  EXPECT_FALSE(shrunk.options.allow_nested);
  EXPECT_FALSE(shrunk.options.allow_2d);
  EXPECT_EQ(shrunk.options.min_arrays, 1);
  EXPECT_EQ(shrunk.options.max_arrays, 1);
  EXPECT_EQ(shrunk.options.min_extent, 1);
  EXPECT_EQ(shrunk.options.max_extent, 1);
}

TEST(NumrepProperties, HoldAcrossManySeeds) {
  for (std::uint64_t trial = 0; trial < 500; ++trial) {
    Rng rng(derive_seed(0x22222, trial));
    const CheckResult r = check_numrep_trial(rng);
    ASSERT_TRUE(r.ok) << "trial " << trial << ": " << r.message;
  }
}

TEST(Campaign, RunsCleanAcrossAllTargets) {
  CampaignOptions options;
  options.trials = 25;
  options.seed = 7;
  const CampaignResult r = run_campaign(options);
  EXPECT_EQ(r.trials, 25);
  EXPECT_TRUE(r.ok()) << (r.failures.empty() ? std::string()
                                             : r.failures.front().message);
}

TEST(Campaign, ReportsAnUnreadableCorpusDirectory) {
  const CorpusResult r = replay_corpus("/nonexistent/corpus/dir");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

TEST(Corpus, CheckedInSeedsReplayClean) {
  const CorpusResult r = replay_corpus(LUIS_TEST_DATA_DIR "/corpus");
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_GE(r.entries.size(), 8u); // the checked-in .lp and .ir seeds
  for (const CorpusResult::Entry& e : r.entries)
    EXPECT_TRUE(e.result.ok) << e.path << ": " << e.result.message;
}

} // namespace
} // namespace luis::testing
