#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "numrep/fixed_point.hpp"
#include "numrep/iebw.hpp"
#include "numrep/posit.hpp"
#include "numrep/soft_float.hpp"
#include "support/rng.hpp"

namespace luis::numrep {
namespace {

// Brute-force evaluation of Definition 1: the smallest eps such that
// R(x + eps) != R(x) or R(x - eps) != R(x), located by bisection over
// binary64 values (the predicate is monotone in eps). Returns
// -floor(log2 eps).
int iebw_by_definition(const std::function<double(double)>& repr, double x) {
  const double rx = repr(x);
  auto changes = [&](double eps) {
    return repr(x + eps) != rx || repr(x - eps) != rx;
  };
  double lo = 0.0, hi = std::max(std::abs(x), 1.0);
  while (!changes(hi)) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = lo / 2 + hi / 2;
    if (mid == lo || mid == hi) break;
    (changes(mid) ? hi : lo) = mid;
  }
  return -static_cast<int>(std::floor(std::log2(hi)));
}

TEST(Iebw, FloatFormulaMatchesDefinitionOne) {
  Rng rng(1);
  for (const auto& fmt : {kBinary16, kBfloat16, kBinary32}) {
    auto repr = [&](double v) { return round_to_format(fmt, v); };
    for (int i = 0; i < 300; ++i) {
      // Representable points with mantissa away from power-of-two
      // boundaries. The bisection runs in binary64, so at an exact
      // half-ULP tie the measured threshold can land one power-of-two
      // window below the closed form (double rounding); Definition 1 and
      // Definition 3 agree within that one-unit window.
      const int e = static_cast<int>(rng.next_int(-10, 10));
      const double x = round_to_format(fmt, std::ldexp(1.2 + 0.6 * rng.next_double(), e));
      const int measured = iebw_by_definition(repr, x);
      const int closed = iebw_float(fmt, x);
      EXPECT_GE(measured, closed) << fmt.name() << " x=" << x;
      EXPECT_LE(measured, closed + 1) << fmt.name() << " x=" << x;
    }
  }
}

TEST(Iebw, FixedFormulaMatchesDefinitionOne) {
  Rng rng(2);
  for (int frac : {4, 8, 16}) {
    const FixedSpec spec{32, frac, true};
    auto repr = [&](double v) { return quantize_fixed(spec, v); };
    for (int i = 0; i < 100; ++i) {
      const double x = quantize_fixed(spec, rng.next_double(-100, 100));
      // Definition 1's eps is half the grid step, so the bisection lands at
      // frac + 1 (or frac + 2 when binary64 double rounding nudges the
      // threshold across the tie); the paper's Definition 4 fixes
      // IEBW_fix = f, one unit of deliberate conservatism.
      const int measured = iebw_by_definition(repr, x);
      EXPECT_GE(measured, frac + 1) << spec.name();
      EXPECT_LE(measured, frac + 2) << spec.name();
      EXPECT_EQ(iebw_fixed(frac), frac);
    }
  }
}

TEST(Iebw, FloatKnownValues) {
  // binary32, x in [1, 2): e_v = 0, IEBW = p = 24.
  EXPECT_EQ(iebw_float(kBinary32, 1.5), 24);
  // x in [2, 4): one fewer fractional bit.
  EXPECT_EQ(iebw_float(kBinary32, 3.0), 23);
  // x in [0.5, 1): one more.
  EXPECT_EQ(iebw_float(kBinary32, 0.75), 25);
  // Large x: IEBW can go negative (ULP > 1).
  EXPECT_LT(iebw_float(kBinary32, 1e9), 0);
  // binary64 at the same points is 29 bits better (p 53 vs 24).
  EXPECT_EQ(iebw_float(kBinary64, 1.5), 53);
  EXPECT_EQ(iebw_float(kBfloat16, 1.5), 8);
  EXPECT_EQ(iebw_float(kBinary16, 1.5), 11);
}

TEST(Iebw, FloatSubnormalLosesHiddenBit) {
  // In the subnormal range p_hat = 1 and e_v clamps at emin: every
  // subnormal shares the lattice step 2^(emin - p + 1), so the IEBW is
  // constant below 2^emin rather than growing with -ilogb(x) (the
  // unclamped formula would overclaim resolution the format lacks).
  const int emin = kBinary32.min_exponent();
  const double sub = std::ldexp(1.0, emin - 3);
  EXPECT_EQ(iebw_float(kBinary32, sub), 24 - 1 - emin);
  EXPECT_EQ(iebw_float(kBinary32, std::ldexp(1.0, emin - 10)),
            iebw_float(kBinary32, sub));
  // At the minimum normal the two regimes agree.
  EXPECT_EQ(iebw_float(kBinary32, std::ldexp(1.0, emin)), 24 - 1 - emin);
}

TEST(Iebw, FloatGrowsAsMagnitudeShrinks) {
  int prev = INT32_MIN;
  for (double x = 1e10; x > 1e-10; x /= 8) {
    const int now = iebw_float(kBinary32, x);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(Iebw, PositDefinitionFive) {
  // posit32_2 at 1.0: n_f = 27, k = 0, e = 0 -> IEBW = 27.
  EXPECT_EQ(iebw_posit(kPosit32, 1.0), 27);
  // At 16 = useed^1 (k=1, e=0): regime one bit longer -> n_f = 26,
  // scale 4 -> IEBW = 26 - 4 = 22.
  EXPECT_EQ(iebw_posit(kPosit32, 16.0), 22);
  // Tapered precision: IEBW decreases much faster than floats away from 1.
  EXPECT_GT(iebw_posit(kPosit32, 1.0), iebw_posit(kPosit32, 1e6));
}

TEST(Iebw, PositMatchesDefinitionOne) {
  Rng rng(3);
  auto repr = [&](double v) { return quantize_posit(kPosit16, v); };
  for (int i = 0; i < 200; ++i) {
    const int e = static_cast<int>(rng.next_int(-4, 4));
    const double x = quantize_posit(kPosit16, std::ldexp(1.2 + 0.6 * rng.next_double(), e));
    // Posit grids behave like fixed point locally: Definition 1's bisected
    // eps is half an ULP, one unit above Definition 5's closed form (two
    // when binary64 double rounding nudges the threshold across a tie).
    const int by_def = iebw_by_definition(repr, x);
    const int closed = iebw_posit(kPosit16, x);
    EXPECT_GE(by_def, closed + 1) << "x=" << x;
    EXPECT_LE(by_def, closed + 2) << "x=" << x;
  }
}

TEST(Iebw, RangeUsesGuaranteedPrecision) {
  // Worst case over [0.1, 100] for binary32 is at |x| = 100 (e_v = 6).
  EXPECT_EQ(iebw_of_range(kBinary32, 0.1, 100.0), 24 - 6);
  EXPECT_EQ(iebw_of_range(kBinary32, -100.0, 0.5), 24 - 6);
  // Best case is at the smallest magnitude (0.1 -> e_v = -4).
  EXPECT_EQ(iebw_of_range_best_case(kBinary32, 0.1, 100.0), 24 + 4);
  // Fixed point ranges are frac-determined.
  EXPECT_EQ(iebw_of_range(kFixed32, -5, 5, 13), 13);
  EXPECT_EQ(iebw_of_range_best_case(kFixed32, -5, 5, 13), 13);
}

TEST(Iebw, RangeStraddlingZero) {
  // Guaranteed precision still evaluates at the magnitude extreme.
  EXPECT_EQ(iebw_of_range(kBinary32, -2.5, 2.5), iebw_float(kBinary32, 2.5));
  // Literal best case on a zero-straddling range clamps at the smallest
  // positive representable value.
  EXPECT_EQ(iebw_of_range_best_case(kBinary32, -1.0, 1.0),
            iebw_float(kBinary32, float_min_subnormal(kBinary32)));
}

TEST(Iebw, DegenerateZeroRange) {
  // [0, 0] is representable exactly by everything; the convention is the
  // IEBW at the smallest positive value.
  EXPECT_EQ(iebw_of_range(kBinary32, 0.0, 0.0),
            iebw_float(kBinary32, float_min_subnormal(kBinary32)));
}

TEST(Iebw, FixMaxBasics) {
  // Range [-5, 5] in a signed 32-bit word: 3 integer bits + sign leaves 28.
  EXPECT_EQ(fixed_point_max_frac(32, true, -5, 5), 28);
  // Range within [-1, 1] needs no integer bits at all.
  EXPECT_EQ(fixed_point_max_frac(32, true, -1, 1), 30);
  EXPECT_EQ(fixed_point_max_frac(32, true, -0.25, 0.25), 31); // capped at w-1
  // Zero-width range.
  EXPECT_EQ(fixed_point_max_frac(32, true, 0, 0), 31);
  // Huge ranges make narrow fixed types infeasible.
  EXPECT_LT(fixed_point_max_frac(16, true, -1e9, 1e9), 0);
}

TEST(Iebw, FixMaxNeverOverflows) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double hi = std::ldexp(rng.next_double(0.5, 2.0), rng.next_int(-20, 20));
    const int width = static_cast<int>(rng.next_int(8, 64));
    const int f = fixed_point_max_frac(width, true, -hi, hi);
    if (f < 0) continue;
    const FixedSpec spec{width, f, true};
    // The range extreme must quantize without saturating.
    EXPECT_LE(hi, spec.max_value() * (1 + 1e-12)) << width << " " << hi;
    // And one more fractional bit must overflow (maximality).
    if (f + 1 < width) {
      const FixedSpec tighter{width, f + 1, true};
      EXPECT_GT(hi, tighter.max_value() * (1 - 1e-12));
    }
  }
}

TEST(Iebw, CrossRepresentationComparisonAtUnitScale) {
  // The headline use of the metric: comparable numbers across systems.
  // Around |x| ~ 1: fix32 with 28 fractional bits beats binary32 (24),
  // binary64 (53) beats both; posit32_2 (27) sits between.
  const double lo = -4.0, hi = 4.0;
  const int fix_f = fixed_point_max_frac(32, true, lo, hi);
  EXPECT_EQ(fix_f, 28);
  EXPECT_GT(iebw_of_range(kFixed32, lo, hi, fix_f),
            iebw_of_range(kBinary32, lo, hi));
  EXPECT_GT(iebw_of_range(kBinary64, lo, hi),
            iebw_of_range(kFixed32, lo, hi, fix_f));
  EXPECT_GT(iebw_of_range(kPosit32, lo, hi), iebw_of_range(kBinary32, lo, hi));
}

TEST(Iebw, CrossRepresentationComparisonAtLargeScale) {
  // At large magnitude, floats retain relative precision while fixed point
  // runs out of fractional bits: IEBW captures exactly this.
  const double lo = 0.0, hi = 1e6;
  const int fix_f = fixed_point_max_frac(32, true, lo, hi);
  EXPECT_LT(iebw_of_range(kFixed32, lo, hi, fix_f),
            iebw_of_range(kBinary64, lo, hi));
}

class IebwFloatSweep
    : public ::testing::TestWithParam<std::tuple<NumericFormat, int>> {};

TEST_P(IebwFloatSweep, ClosedFormIsPMinusExponent) {
  const auto& [fmt, e] = GetParam();
  const double x = std::ldexp(1.5, e);
  EXPECT_EQ(iebw_float(fmt, x), fmt.precision() - e);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IebwFloatSweep,
    ::testing::Combine(::testing::Values(kBinary16, kBinary32, kBinary64,
                                         kBfloat16),
                       ::testing::Values(-8, -2, 0, 1, 7)));

} // namespace
} // namespace luis::numrep
