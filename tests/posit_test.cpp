#include <gtest/gtest.h>

#include <cmath>

#include "numrep/posit.hpp"
#include "support/rng.hpp"

namespace luis::numrep {
namespace {

TEST(Posit, ZeroAndNaR) {
  const auto zero = Posit::from_double(kPosit16, 0.0);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.to_double(), 0.0);

  const auto nar = Posit::from_double(kPosit16, std::nan(""));
  EXPECT_TRUE(nar.is_nar());
  EXPECT_TRUE(std::isnan(nar.to_double()));
  EXPECT_TRUE(Posit::from_double(kPosit16, HUGE_VAL).is_nar());
  EXPECT_EQ(nar.bits(), 0x8000u);
}

TEST(Posit, KnownPosit8Encodings) {
  // posit8_0: 1.0 = 0b0100'0000, useed = 2.
  EXPECT_EQ(Posit::from_double(kPosit8, 1.0).bits(), 0x40u);
  EXPECT_EQ(Posit::from_double(kPosit8, 2.0).bits(), 0x60u);
  EXPECT_EQ(Posit::from_double(kPosit8, 0.5).bits(), 0x20u);
  EXPECT_EQ(Posit::from_double(kPosit8, 1.5).bits(), 0x50u);
  EXPECT_EQ(Posit::from_double(kPosit8, -1.0).bits(), 0xC0u);
  // maxpos for posit8_0 is 2^6 = 64, minpos is 2^-6.
  EXPECT_EQ(posit_max_value(kPosit8), 64.0);
  EXPECT_EQ(posit_min_value(kPosit8), 1.0 / 64.0);
  EXPECT_EQ(Posit::from_double(kPosit8, 64.0).bits(), 0x7Fu);
  EXPECT_EQ(Posit::from_double(kPosit8, 1.0 / 64).bits(), 0x01u);
}

TEST(Posit, KnownPosit16Values) {
  // posit16_1: 1.0 = 0b0100'0000'0000'0000.
  EXPECT_EQ(Posit::from_double(kPosit16, 1.0).bits(), 0x4000u);
  EXPECT_EQ(Posit::from_double(kPosit16, 1.0).to_double(), 1.0);
  // useed = 2^(2^1) = 4 -> 4.0 has regime k=1, e=0.
  const auto four = Posit::from_double(kPosit16, 4.0);
  EXPECT_EQ(four.to_double(), 4.0);
  const auto fields = four.fields();
  EXPECT_EQ(fields.regime, 1);
  EXPECT_EQ(fields.exponent, 0);
}

TEST(Posit, SaturationNeverOverflowsOrUnderflows) {
  EXPECT_EQ(Posit::from_double(kPosit8, 1e30).to_double(), 64.0);
  EXPECT_EQ(Posit::from_double(kPosit8, -1e30).to_double(), -64.0);
  EXPECT_EQ(Posit::from_double(kPosit8, 1e-30).to_double(), 1.0 / 64.0);
  EXPECT_EQ(Posit::from_double(kPosit8, -1e-30).to_double(), -1.0 / 64.0);
}

TEST(Posit, NegationIsExact) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double x = std::ldexp(rng.next_double(-2, 2), rng.next_int(-10, 10));
    const auto p = Posit::from_double(kPosit16, x);
    EXPECT_EQ(p.negate().to_double(), -p.to_double());
  }
}

TEST(Posit, RoundTripIsIdempotent) {
  Rng rng(2);
  for (const auto& fmt : {kPosit8, kPosit16, kPosit32}) {
    for (int i = 0; i < 1000; ++i) {
      const double x = std::ldexp(rng.next_double(-2, 2), rng.next_int(-20, 20));
      const double once = quantize_posit(fmt, x);
      EXPECT_EQ(quantize_posit(fmt, once), once) << fmt.name() << " " << x;
    }
  }
}

TEST(Posit, AllPosit8BitPatternsRoundTripExactly) {
  // Exhaustive: decode every posit8 pattern and re-encode it.
  for (unsigned bits = 0; bits < 256; ++bits) {
    const Posit p{kPosit8, bits};
    if (p.is_nar()) continue;
    const double v = p.to_double();
    EXPECT_EQ(Posit::from_double(kPosit8, v).bits(), bits) << "pattern " << bits;
  }
}

TEST(Posit, AllPosit16BitPatternsRoundTripExactly) {
  for (unsigned bits = 0; bits < 65536; ++bits) {
    const Posit p{kPosit16, bits};
    if (p.is_nar()) continue;
    const double v = p.to_double();
    ASSERT_EQ(Posit::from_double(kPosit16, v).bits(), bits) << "pattern " << bits;
  }
}

TEST(Posit, MonotoneInValue) {
  // Posit bit patterns (as signed integers) are ordered like their values.
  double prev = -HUGE_VAL;
  for (int sbits = -128; sbits < 128; ++sbits) {
    const auto bits = static_cast<std::uint32_t>(sbits) & 0xFFu;
    const Posit p{kPosit8, bits};
    if (p.is_nar()) {
      prev = -HUGE_VAL; // NaR is the most negative pattern; restart
      continue;
    }
    const double v = p.to_double();
    EXPECT_GT(v, prev) << "pattern " << sbits;
    prev = v;
  }
}

TEST(Posit, RoundsToNearest) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::ldexp(1.0 + rng.next_double(), rng.next_int(-5, 5));
    const auto p = Posit::from_double(kPosit16, x);
    const double v = p.to_double();
    // The neighbour patterns must not be closer to x than the chosen one.
    const Posit up{kPosit16, (p.bits() + 1) & 0xFFFFu};
    const Posit down{kPosit16, (p.bits() - 1) & 0xFFFFu};
    if (!up.is_nar()) {
      EXPECT_LE(std::abs(v - x), std::abs(up.to_double() - x) * (1 + 1e-12));
    }
    if (!down.is_nar()) {
      EXPECT_LE(std::abs(v - x), std::abs(down.to_double() - x) * (1 + 1e-12));
    }
  }
}

TEST(Posit, ArithmeticBasics) {
  const auto a = Posit::from_double(kPosit16, 1.5);
  const auto b = Posit::from_double(kPosit16, 0.25);
  EXPECT_EQ((a + b).to_double(), 1.75);
  EXPECT_EQ((a - b).to_double(), 1.25);
  EXPECT_EQ((a * b).to_double(), 0.375);
  EXPECT_EQ((a / b).to_double(), 6.0);
}

TEST(Posit, FieldsOfOne) {
  const auto one = Posit::from_double(kPosit32, 1.0).fields();
  EXPECT_FALSE(one.negative);
  EXPECT_EQ(one.regime, 0);
  EXPECT_EQ(one.exponent, 0);
  EXPECT_EQ(one.fraction, 0u);
  // posit32_2: sign(1) + regime(2) + es(2) -> 27 fraction bits.
  EXPECT_EQ(one.fraction_bits, 27);
}

TEST(Posit, FractionBitsShrinkWithRegime) {
  // Larger magnitudes need longer regimes, leaving fewer fraction bits:
  // tapered precision is the defining posit property.
  int prev_frac_bits = 64;
  for (double x = 1.0; x <= 1e6; x *= 16.0) {
    const auto f = Posit::from_double(kPosit32, x * 1.000001).fields();
    EXPECT_LE(f.fraction_bits, prev_frac_bits);
    prev_frac_bits = f.fraction_bits;
  }
}

class PositWidthSweep : public ::testing::TestWithParam<NumericFormat> {};

TEST_P(PositWidthSweep, QuantizationIdempotentAndBounded) {
  const NumericFormat fmt = GetParam();
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x = std::ldexp(rng.next_double(-2, 2), rng.next_int(-8, 8));
    const double q = quantize_posit(fmt, x);
    EXPECT_EQ(quantize_posit(fmt, q), q);
    // Inside the dynamic range (away from the minpos/maxpos taper, where
    // posit saturation has unbounded relative error by design) rounding
    // keeps at least one significant bit.
    if (x != 0.0 && std::abs(x) >= posit_min_value(fmt) * 4 &&
        std::abs(x) <= posit_max_value(fmt) / 4) {
      EXPECT_LT(std::abs(q - x) / std::abs(x), 0.5) << fmt.name() << " " << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PositWidthSweep,
                         ::testing::Values(kPosit8, kPosit16, kPosit32,
                                           NumericFormat::posit(6, 0),
                                           NumericFormat::posit(12, 2)));

} // namespace
} // namespace luis::numrep
