#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"
#include "support/union_find.hpp"

namespace luis {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRangeMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.component_count(), 5u);
  uf.unite(0, 1);
  uf.unite(3, 4);
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(1, 2));
  uf.unite(1, 3);
  EXPECT_TRUE(uf.same(0, 4));
  EXPECT_EQ(uf.component_count(), 2u);
}

TEST(UnionFind, AddGrowsStructure) {
  UnionFind uf(2);
  const auto idx = uf.add();
  EXPECT_EQ(idx, 2u);
  EXPECT_EQ(uf.component_count(), 3u);
  uf.unite(idx, 0);
  EXPECT_TRUE(uf.same(2, 0));
}

TEST(UnionFind, UniteIsIdempotent) {
  UnionFind uf(3);
  uf.unite(0, 1);
  const auto count = uf.component_count();
  uf.unite(0, 1);
  uf.unite(1, 0);
  EXPECT_EQ(uf.component_count(), count);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Statistics, MeanAndGeomean) {
  const double xs[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean_of(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Statistics, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 25), 2.0);
}

TEST(Statistics, MpeMatchesPaperDefinition) {
  const double ref[] = {1.0, 2.0, -4.0};
  const double tuned[] = {1.1, 1.9, -4.4};
  // 100/3 * (0.1 + 0.05 + 0.1)
  EXPECT_NEAR(mean_percentage_error(ref, tuned), 100.0 / 3.0 * 0.25, 1e-9);
}

TEST(Statistics, MpeSkipsZeroReferenceElements) {
  const double ref[] = {0.0, 2.0};
  const double tuned[] = {0.5, 2.0};
  EXPECT_DOUBLE_EQ(mean_percentage_error(ref, tuned), 0.0);
}

TEST(Statistics, MpeAllZeroReference) {
  const double ref[] = {0.0, 0.0};
  const double same[] = {0.0, 0.0};
  const double diff[] = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_percentage_error(ref, same), 0.0);
  EXPECT_TRUE(std::isinf(mean_percentage_error(ref, diff)));
}

TEST(StringUtils, SplitTrimStartsWith) {
  const auto fields = split_fields("a, b,, c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(trim(fields[1]), "b");
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_TRUE(starts_with("binary32", "binary"));
  EXPECT_FALSE(starts_with("fix", "fixed"));
}

TEST(StringUtils, FormatAndPad) {
  EXPECT_EQ(format_string("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  // The historical sweep report interpolated names with %s and emitted
  // broken JSON for exactly these inputs.
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, WriterEmitsNestedContainersWithCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("tri\"solv");
  w.key("jobs");
  w.begin_array();
  w.value(1L);
  w.value(2.5, "%.1f");
  w.value(true);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"tri\\\"solv\",\"jobs\":[1,2.5,true],\"nested\":{}}");
}

TEST(Json, WriterRawValueAndCosmetics) {
  JsonWriter w;
  w.begin_array();
  w.raw_value("{\"pre\":1}");
  w.newline();
  w.value(2L);
  w.end_array();
  EXPECT_EQ(w.str(), "[{\"pre\":1}\n,2]");
}

} // namespace
} // namespace luis
