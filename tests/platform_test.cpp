#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "platform/cost_model.hpp"
#include "platform/microbench.hpp"
#include "platform/optime.hpp"

namespace luis::platform {
namespace {

TEST(OpTimeTable, TableTwoValuesVerbatim) {
  // Spot checks against the paper's Table II.
  EXPECT_DOUBLE_EQ(stm32_table().op_time("add", "fix"), 1.24);
  EXPECT_DOUBLE_EQ(stm32_table().op_time("rem", "double"), 152.35);
  EXPECT_DOUBLE_EQ(stm32_table().op_time("div", "double"), 18.33);
  EXPECT_DOUBLE_EQ(raspberry_table().op_time("mul", "float"), 3.35);
  EXPECT_DOUBLE_EQ(raspberry_table().cast_time("float", "double"), 1.00);
  EXPECT_DOUBLE_EQ(intel_table().op_time("rem", "double"), 387.09);
  EXPECT_DOUBLE_EQ(intel_table().op_time("add", "float"), 1.03);
  EXPECT_DOUBLE_EQ(amd_table().op_time("div", "fix"), 15.14);
  EXPECT_DOUBLE_EQ(amd_table().cast_time("fix", "double"), 8.37);
}

TEST(OpTimeTable, SubAlwaysEqualsAdd) {
  for (const OpTimeTable* t : standard_platforms())
    for (const char* type : {"fix", "float", "double"})
      EXPECT_DOUBLE_EQ(t->op_time("sub", type), t->op_time("add", type))
          << t->machine() << " " << type;
}

TEST(OpTimeTable, IntrinsicFallbacks) {
  const OpTimeTable& t = intel_table();
  EXPECT_DOUBLE_EQ(t.op_time("neg", "double"), t.op_time("add", "double"));
  EXPECT_DOUBLE_EQ(t.op_time("min", "fix"), t.op_time("add", "fix"));
  EXPECT_DOUBLE_EQ(t.op_time("sqrt", "float"), 2.0 * t.op_time("div", "float"));
  EXPECT_DOUBLE_EQ(t.op_time("exp", "double"), t.op_time("rem", "double"));
  EXPECT_DOUBLE_EQ(t.op_time("pow", "float"), t.op_time("rem", "float"));
}

TEST(OpTimeTable, ExtensionTypeFallbacks) {
  const OpTimeTable& t = amd_table();
  EXPECT_DOUBLE_EQ(t.op_time("add", "half"), t.op_time("add", "float"));
  EXPECT_DOUBLE_EQ(t.op_time("mul", "bfloat16"), t.op_time("mul", "float"));
  EXPECT_DOUBLE_EQ(t.op_time("add", "posit"),
                   t.op_time("add", "float") * kPositSoftwareFactor);
  // Cast fallbacks for extension classes.
  EXPECT_DOUBLE_EQ(t.cast_time("half", "double"), t.cast_time("float", "double"));
}

TEST(OpTimeTable, SoftwareEmulatedRowsAreMeasuredNotScaled) {
  // fp8 and fposit arithmetic carries explicit rows from the bench_micro
  // SoftEmu pass (emulated op / native float op time ratios), replacing
  // the old scaled-class guesses (fp8 = float, fposit = float x 8).
  for (const OpTimeTable* t : standard_platforms()) {
    EXPECT_TRUE(t->has("add", "fp8")) << t->machine();
    EXPECT_TRUE(t->has("mul", "fposit")) << t->machine();
    // Measured ratios applied to the platform's own float row.
    EXPECT_DOUBLE_EQ(t->op_time("add", "fp8"),
                     32.5 * t->op_time("add", "float"));
    EXPECT_DOUBLE_EQ(t->op_time("div", "fposit"),
                     60.2 * t->op_time("div", "float"));
    EXPECT_DOUBLE_EQ(t->op_time("sub", "fp8"), t->op_time("add", "fp8"));
    // Emulation is far more expensive than the hardware-float guess and
    // fposit decode/encode costs more than the fp8 one.
    EXPECT_GT(t->op_time("mul", "fp8"), t->op_time("mul", "float"));
    EXPECT_GT(t->op_time("mul", "fposit"), t->op_time("mul", "fp8"));
  }
}

TEST(OpTimeTable, IntrinsicsKeepMeasuredTypeClass) {
  // neg/sqrt on a software-emulated class reduce onto that class's own
  // measured rows, not onto the hardware float fallback.
  const OpTimeTable& t = intel_table();
  EXPECT_DOUBLE_EQ(t.op_time("neg", "fp8"), t.op_time("add", "fp8"));
  EXPECT_DOUBLE_EQ(t.op_time("sqrt", "fposit"),
                   2.0 * t.op_time("div", "fposit"));
  // Posit has no measured rows; its fallback is unchanged.
  EXPECT_DOUBLE_EQ(t.op_time("neg", "posit"),
                   t.op_time("add", "float") * kPositSoftwareFactor);
}

TEST(OpTimeTable, NormalizeDividesByMinimum) {
  OpTimeTable t("test");
  t.set("add", "fix", 10.0);
  t.set("mul", "fix", 25.0);
  t.normalize();
  EXPECT_DOUBLE_EQ(t.op_time("add", "fix"), 1.0);
  EXPECT_DOUBLE_EQ(t.op_time("mul", "fix"), 2.5);
}

TEST(OpTimeTable, PlatformLookupIsCaseInsensitive) {
  EXPECT_EQ(platform_by_name("stm32"), &stm32_table());
  EXPECT_EQ(platform_by_name("STM32"), &stm32_table());
  EXPECT_EQ(platform_by_name("Raspberry"), &raspberry_table());
  EXPECT_EQ(platform_by_name("amd"), &amd_table());
  EXPECT_EQ(platform_by_name("riscv"), nullptr);
  EXPECT_EQ(standard_platforms().size(), 4u);
}

TEST(CostModel, SimulatedTimeSumsCounterEntries) {
  interp::CostCounters counters;
  counters.count_op("add", "fix");
  counters.count_op("add", "fix");
  counters.count_op("mul", "double");
  counters.non_real_ops = 8;
  CostModelOptions opt;
  opt.non_real_op_cost = 0.5;
  const double t = simulated_time(counters, stm32_table(), opt);
  EXPECT_DOUBLE_EQ(t, 2 * 1.24 + 4.02 + 8 * 0.5);
}

TEST(CostModel, SpeedupMatchesPaperFormula) {
  EXPECT_DOUBLE_EQ(speedup_percent(200.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(speedup_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(speedup_percent(100.0, 200.0), -50.0);
}

TEST(Microbench, ProducesCompleteNormalizedTable) {
  MicrobenchOptions opt;
  opt.blocks = 5; // smoke-test speed
  const OpTimeTable host = run_microbenchmark(opt);
  double min_entry = 1e300;
  for (const char* op : {"add", "sub", "mul", "div", "rem"})
    for (const char* type : {"fix", "float", "double"}) {
      EXPECT_TRUE(host.has(op, type)) << op << " " << type;
      EXPECT_GT(host.op_time(op, type), 0.0);
      min_entry = std::min(min_entry, host.op_time(op, type));
    }
  for (const char* from : {"fix", "float", "double"})
    for (const char* to : {"fix", "float", "double"}) {
      if (std::string(from) == to && std::string(from) != "fix") continue;
      EXPECT_GT(host.cast_time(from, to), 0.0) << from << "->" << to;
      min_entry = std::min(min_entry, host.cast_time(from, to));
    }
  // Normalization anchors the fastest entry at 1.0.
  EXPECT_DOUBLE_EQ(min_entry, 1.0);
}

TEST(OpTimeTableIo, TextRoundTrip) {
  const OpTimeTable& original = raspberry_table();
  const std::string text = original.to_text();
  const auto parsed = parse_optime_table(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->machine(), "Raspberry");
  EXPECT_EQ(parsed->entries(), original.entries());
  // And the round trip is a fixed point of serialization.
  EXPECT_EQ(parsed->to_text(), text);
}

TEST(OpTimeTableIo, RejectsMalformedText) {
  EXPECT_FALSE(parse_optime_table("").has_value());
  EXPECT_FALSE(parse_optime_table("machine m\nadd fix\n").has_value());
  EXPECT_FALSE(parse_optime_table("add fix 1.0\n").has_value()); // no header
}

} // namespace
} // namespace luis::platform
