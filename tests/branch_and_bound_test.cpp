#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "ilp/branch_and_bound.hpp"
#include "ilp/lp_writer.hpp"
#include "ilp/solver_cache.hpp"
#include "support/rng.hpp"

namespace luis::ilp {
namespace {

TEST(BranchAndBound, SimpleIntegerRounding) {
  // max x + y s.t. 2x + 2y <= 7, integer -> x + y = 3 (not 3.5).
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  const VarId y = m.add_integer("y", 0, 10);
  m.add_le(LinearExpr().add(x, 2).add(y, 2), 7);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 1).add(y, 1));
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_TRUE(m.is_feasible(s.values));
}

TEST(BranchAndBound, KnapsackAgainstBruteForce) {
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 12;
    std::vector<double> weight(n), value(n);
    for (int i = 0; i < n; ++i) {
      weight[static_cast<std::size_t>(i)] = static_cast<double>(rng.next_int(1, 20));
      value[static_cast<std::size_t>(i)] = static_cast<double>(rng.next_int(1, 30));
    }
    const double cap = static_cast<double>(rng.next_int(20, 80));

    Model m;
    LinearExpr wsum, vsum;
    std::vector<VarId> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(m.add_binary("x" + std::to_string(i)));
      wsum.add(xs.back(), weight[static_cast<std::size_t>(i)]);
      vsum.add(xs.back(), value[static_cast<std::size_t>(i)]);
    }
    m.add_le(std::move(wsum), cap);
    m.set_objective(Direction::Maximize, std::move(vsum));

    const Solution s = solve_milp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(s.values)) << "trial " << trial;

    // Brute force over 2^12 subsets.
    double best = 0.0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      double w = 0, v = 0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          w += weight[static_cast<std::size_t>(i)];
          v += value[static_cast<std::size_t>(i)];
        }
      }
      if (w <= cap) best = std::max(best, v);
    }
    EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(BranchAndBound, AssignmentProblemIsIntegralAtRoot) {
  // 4x4 assignment: LP relaxation is integral (totally unimodular), so the
  // solver should find the optimum with very few nodes.
  const double cost[4][4] = {
      {9, 2, 7, 8}, {6, 4, 3, 7}, {5, 8, 1, 8}, {7, 6, 9, 4}};
  Model m;
  VarId x[4][4];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      x[i][j] = m.add_binary("x" + std::to_string(i) + std::to_string(j));
  for (int i = 0; i < 4; ++i) {
    LinearExpr row, col;
    for (int j = 0; j < 4; ++j) {
      row.add(x[i][j], 1);
      col.add(x[j][i], 1);
    }
    m.add_eq(std::move(row), 1);
    m.add_eq(std::move(col), 1);
  }
  LinearExpr obj;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) obj.add(x[i][j], cost[i][j]);
  m.set_objective(Direction::Minimize, std::move(obj));

  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 13.0, 1e-6); // 2 + 3 + 5 + 4 (hand-checked best)
  EXPECT_LE(s.nodes, 10);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // max 3x + 2y, x integer, y continuous; x + y <= 4.5, x <= 2.3.
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  const VarId y = m.add_continuous("y", 0.0, kInfinity);
  m.add_le(LinearExpr().add(x, 1).add(y, 1), 4.5);
  m.add_le(LinearExpr().add(x, 1), 2.3);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 3).add(y, 2));
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(x), 2.0, 1e-6);
  EXPECT_NEAR(s.value(y), 2.5, 1e-6);
  EXPECT_NEAR(s.objective, 11.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 2x = 3 has no integer solution.
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  m.add_eq(LinearExpr().add(x, 2), 3);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  EXPECT_EQ(solve_milp(m).status, SolveStatus::Infeasible);
}

TEST(BranchAndBound, BigMIndicatorConstraints) {
  // The exact constraint shape the LUIS model uses: y >= x_a + x_b - 1.
  // Choosing types t for a and t' for b must force the cast indicator.
  Model m;
  const VarId xa = m.add_binary("xa_t");
  const VarId xb = m.add_binary("xb_u");
  const VarId cast = m.add_binary("y_cast");
  // xa + xb <= y + 1
  m.add_le(LinearExpr().add(xa, 1).add(xb, 1).add(cast, -1), 1);
  m.add_eq(LinearExpr().add(xa, 1), 1);
  m.add_eq(LinearExpr().add(xb, 1), 1);
  m.set_objective(Direction::Minimize, LinearExpr().add(cast, 5));
  const Solution s = solve_milp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(cast), 1.0, 1e-6);
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST(BranchAndBound, NodeLimitReportsIncumbent) {
  // A problem needing branching, with max_nodes = 1: after the root LP the
  // search stops; either no incumbent (Infeasible->NodeLimit) or a found
  // one is reported with NodeLimit status.
  Model m;
  const VarId x = m.add_integer("x", 0, 10);
  const VarId y = m.add_integer("y", 0, 10);
  m.add_le(LinearExpr().add(x, 2).add(y, 2), 7);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 1).add(y, 1));
  BranchAndBoundOptions opt;
  opt.max_nodes = 1;
  const Solution s = solve_milp(m, opt);
  EXPECT_EQ(s.status, SolveStatus::NodeLimit);
}

TEST(BranchAndBound, NodeLimitBoundStaysBelowIncumbentObjective) {
  // Minimization under a node limit: the proven bound must never claim
  // more than the search established, i.e. best_bound <= objective.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 10;
    Model m;
    LinearExpr cover, obj;
    for (int i = 0; i < n; ++i) {
      const VarId x = m.add_binary("x" + std::to_string(i));
      cover.add(x, static_cast<double>(rng.next_int(1, 6)));
      obj.add(x, static_cast<double>(rng.next_int(1, 9)) + 0.5);
    }
    m.add_ge(std::move(cover), 12.0);
    m.set_objective(Direction::Minimize, std::move(obj));

    BranchAndBoundOptions opt;
    opt.max_nodes = 3; // forces an early stop on most trials
    const Solution s = solve_milp(m, opt);
    if (s.values.empty()) continue; // no incumbent: nothing to compare
    EXPECT_LE(s.best_bound, s.objective + 1e-9) << "trial " << trial;
  }
}

TEST(BranchAndBound, IterationLimitKeepsBoundSound) {
  // Starved LP iterations: nodes whose relaxation hits IterationLimit are
  // abandoned, but their subtree's bound must survive into best_bound.
  // Dropping them silently used to report best_bound = +inf for a
  // minimization problem — an unproven "proof" of optimality.
  Model m;
  LinearExpr cover, obj;
  for (int i = 0; i < 8; ++i) {
    const VarId x = m.add_binary("x" + std::to_string(i));
    cover.add(x, static_cast<double>(1 + (i * 3) % 5));
    obj.add(x, static_cast<double>(2 + (i * 7) % 9));
  }
  m.add_ge(cover, 10.0);
  m.set_objective(Direction::Minimize, obj);

  // Reference optimum with generous limits.
  const Solution exact = solve_milp(m);
  ASSERT_EQ(exact.status, SolveStatus::Optimal);

  BranchAndBoundOptions starved;
  starved.presolve = false; // keep the full model at the starved LP
  starved.lp.max_iterations = 1;
  const Solution s = solve_milp(m, starved);
  EXPECT_EQ(s.status, SolveStatus::NodeLimit);
  // Nothing was proven, so the bound may be -inf — but it must not exceed
  // the true optimum (a bound above it would falsely tighten the gap).
  EXPECT_LE(s.best_bound, exact.objective + 1e-9);
}

TEST(BranchAndBound, CachedSolutionEqualsFreshSolve) {
  Model m;
  LinearExpr wsum, vsum;
  for (int i = 0; i < 10; ++i) {
    const VarId x = m.add_binary("x" + std::to_string(i));
    wsum.add(x, static_cast<double>(3 + (i * 5) % 11));
    vsum.add(x, static_cast<double>(1 + (i * 7) % 13));
  }
  m.add_le(std::move(wsum), 30.0);
  m.set_objective(Direction::Maximize, std::move(vsum));

  const Solution fresh = solve_milp(m);
  ASSERT_EQ(fresh.status, SolveStatus::Optimal);

  SolverCache cache;
  BranchAndBoundOptions opt;
  opt.cache = &cache;
  const Solution miss = solve_milp(m, opt); // computes and fills the cache
  const Solution hit = solve_milp(m, opt);  // must come from the cache

  const SolverCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);

  for (const Solution* s : {&miss, &hit}) {
    EXPECT_EQ(s->status, fresh.status);
    EXPECT_EQ(s->objective, fresh.objective); // bit-identical, not NEAR
    EXPECT_EQ(s->best_bound, fresh.best_bound);
    EXPECT_EQ(s->values, fresh.values);
  }
}

TEST(BranchAndBound, CacheKeySeparatesModelsAndOptions) {
  Model a, b;
  const VarId xa = a.add_integer("x", 0, 5);
  a.set_objective(Direction::Maximize, LinearExpr().add(xa, 1));
  const VarId xb = b.add_integer("x", 0, 6); // differs only in one bound
  b.set_objective(Direction::Maximize, LinearExpr().add(xb, 1));

  BranchAndBoundOptions opt;
  EXPECT_NE(canonical_model_key(a, opt), canonical_model_key(b, opt));
  BranchAndBoundOptions other = opt;
  other.max_nodes = opt.max_nodes + 1;
  EXPECT_NE(canonical_model_key(a, opt), canonical_model_key(a, other));

  // Names must NOT separate: the canonical form is name-free.
  Model c;
  const VarId xc = c.add_integer("renamed", 0, 5);
  c.set_objective(Direction::Maximize, LinearExpr().add(xc, 1));
  EXPECT_EQ(canonical_model_key(a, opt), canonical_model_key(c, opt));

  SolverCache cache;
  BranchAndBoundOptions cached = opt;
  cached.cache = &cache;
  const Solution sa = solve_milp(a, cached);
  const Solution sb = solve_milp(b, cached);
  EXPECT_EQ(cache.stats().hits, 0); // distinct models, no false sharing
  EXPECT_NEAR(sa.objective, 5.0, 1e-9);
  EXPECT_NEAR(sb.objective, 6.0, 1e-9);
}

TEST(BranchAndBound, RandomMilpsMatchBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 8;
    Model m;
    std::vector<VarId> xs;
    for (int i = 0; i < n; ++i) xs.push_back(m.add_binary("b" + std::to_string(i)));
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int r = 0; r < 5; ++r) {
      LinearExpr e;
      std::vector<double> coef(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        coef[static_cast<std::size_t>(i)] = static_cast<double>(rng.next_int(-5, 5));
        e.add(xs[static_cast<std::size_t>(i)], coef[static_cast<std::size_t>(i)]);
      }
      const double b = static_cast<double>(rng.next_int(0, 10));
      m.add_le(std::move(e), b);
      rows.push_back(std::move(coef));
      rhs.push_back(b);
    }
    LinearExpr obj;
    std::vector<double> c(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      c[static_cast<std::size_t>(i)] = static_cast<double>(rng.next_int(-10, 10));
      obj.add(xs[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)]);
    }
    m.set_objective(Direction::Maximize, std::move(obj));

    const Solution s = solve_milp(m);

    double best = -1e300;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      bool ok = true;
      for (std::size_t r = 0; r < rows.size() && ok; ++r) {
        double lhs = 0;
        for (int i = 0; i < n; ++i)
          if (mask & (1u << i)) lhs += rows[r][static_cast<std::size_t>(i)];
        ok = lhs <= rhs[r] + 1e-9;
      }
      if (!ok) continue;
      double v = 0;
      for (int i = 0; i < n; ++i)
        if (mask & (1u << i)) v += c[static_cast<std::size_t>(i)];
      best = std::max(best, v);
    }
    if (best == -1e300) {
      EXPECT_EQ(s.status, SolveStatus::Infeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(s.status, SolveStatus::Optimal) << "trial " << trial;
      EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(s.values)) << "trial " << trial;
    }
  }
}

TEST(BranchAndBound, NearTiePruningRespectsConfiguredTolerance) {
  // Two feasible points whose objectives differ by 5e-8 — below the old
  // hardcoded 1e-9/1e-12 prune cutoffs' blind spot but within the LP
  // tolerance (1e-7). With prune_tolerance tightened to 1e-12 the solver
  // must still find the strictly better point; with a loose 1e-3 it may
  // settle for either, but must never return something worse than that
  // slack allows.
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  m.add_eq(LinearExpr().add(a, 1).add(b, 1), 1); // pick exactly one
  m.set_objective(Direction::Minimize,
                  LinearExpr().add(a, 1.0).add(b, 1.0 + 5e-8));

  BranchAndBoundOptions tight;
  tight.prune_tolerance = 1e-12;
  tight.relative_gap = 0.0;
  const Solution s = solve_milp(m, tight);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(a), 1.0, 1e-6); // the strictly better point
  EXPECT_NEAR(s.objective, 1.0, 1e-9);

  BranchAndBoundOptions loose;
  loose.prune_tolerance = 1e-3;
  const Solution sl = solve_milp(m, loose);
  ASSERT_EQ(sl.status, SolveStatus::Optimal);
  EXPECT_LE(sl.objective, 1.0 + 1e-3);
}

TEST(BranchAndBound, WarmStartOnAndOffAgreeOnOptimum) {
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 10;
    Model m;
    LinearExpr wsum, vsum;
    for (int i = 0; i < n; ++i) {
      const VarId x = m.add_binary("x" + std::to_string(i));
      wsum.add(x, static_cast<double>(rng.next_int(1, 12)));
      vsum.add(x, static_cast<double>(rng.next_int(1, 20)));
    }
    m.add_le(std::move(wsum), 25.0);
    m.set_objective(Direction::Maximize, std::move(vsum));

    BranchAndBoundOptions warm;
    warm.warm_start = true;
    BranchAndBoundOptions cold;
    cold.warm_start = false;
    const Solution sw = solve_milp(m, warm);
    const Solution sc = solve_milp(m, cold);
    ASSERT_EQ(sw.status, SolveStatus::Optimal) << "trial " << trial;
    ASSERT_EQ(sc.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(sw.objective, sc.objective, 1e-6) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(sw.values)) << "trial " << trial;
  }
}

TEST(BranchAndBound, BranchingRulesAgreeOnOptimum) {
  Model m;
  LinearExpr wsum, vsum;
  for (int i = 0; i < 12; ++i) {
    const VarId x = m.add_binary("x" + std::to_string(i));
    wsum.add(x, static_cast<double>(2 + (i * 5) % 9));
    vsum.add(x, static_cast<double>(1 + (i * 11) % 17));
  }
  m.add_le(std::move(wsum), 28.0);
  m.set_objective(Direction::Maximize, std::move(vsum));

  BranchAndBoundOptions pseudo;
  pseudo.branching = Branching::PseudoCost;
  BranchAndBoundOptions frac;
  frac.branching = Branching::MostFractional;
  const Solution sp = solve_milp(m, pseudo);
  const Solution sf = solve_milp(m, frac);
  ASSERT_EQ(sp.status, SolveStatus::Optimal);
  ASSERT_EQ(sf.status, SolveStatus::Optimal);
  EXPECT_NEAR(sp.objective, sf.objective, 1e-6);
}

TEST(SolverCache, StructuralKeyIgnoresObjective) {
  // The basis pool is keyed structurally: two sweep presets differing only
  // in objective weights share warm starts, but any structural change
  // (bounds, rows) must split them.
  Model a;
  const VarId xa = a.add_binary("x");
  a.add_le(LinearExpr().add(xa, 1), 1);
  a.set_objective(Direction::Minimize, LinearExpr().add(xa, 2.0));

  Model b;
  const VarId xb = b.add_binary("x");
  b.add_le(LinearExpr().add(xb, 1), 1);
  b.set_objective(Direction::Minimize, LinearExpr().add(xb, 7.5));

  Model c; // different bound: structurally distinct
  const VarId xc = c.add_integer("x", 0, 2);
  c.add_le(LinearExpr().add(xc, 1), 1);
  c.set_objective(Direction::Minimize, LinearExpr().add(xc, 2.0));

  EXPECT_EQ(structural_model_key(a), structural_model_key(b));
  EXPECT_NE(structural_model_key(a), structural_model_key(c));
}

TEST(SolverCache, BasisPoolRoundTrips) {
  SolverCache cache;
  const std::string key = "struct|demo";
  EXPECT_FALSE(cache.lookup_basis(key).has_value());

  Basis basis;
  basis.status = {Basis::kAtLower, Basis::kBasic};
  basis.basic = {1};
  cache.store_basis(key, basis);
  const std::optional<Basis> got = cache.lookup_basis(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, basis.status);
  EXPECT_EQ(got->basic, basis.basic);

  // Empty bases are not stored; stores are last-wins.
  cache.store_basis(key, Basis{});
  ASSERT_TRUE(cache.lookup_basis(key).has_value());
  Basis other;
  other.status = {Basis::kBasic, Basis::kAtUpper};
  other.basic = {0};
  cache.store_basis(key, other);
  EXPECT_EQ(cache.lookup_basis(key)->basic, other.basic);

  cache.clear();
  EXPECT_FALSE(cache.lookup_basis(key).has_value());
}

TEST(BranchAndBound, SharedBasisAcrossPresetsKeepsAnswersExact) {
  // Same structure, different objectives — the second solve warm starts
  // from the first's root basis and must land on the same optimum as a
  // solve without any cache.
  auto build = [](double w0, double w1) {
    Model m;
    LinearExpr wsum;
    std::vector<VarId> xs;
    for (int i = 0; i < 8; ++i) {
      xs.push_back(m.add_binary("x" + std::to_string(i)));
      wsum.add(xs.back(), static_cast<double>(1 + (i * 3) % 7));
    }
    m.add_le(std::move(wsum), 14.0);
    LinearExpr obj;
    for (int i = 0; i < 8; ++i)
      obj.add(xs[static_cast<std::size_t>(i)], (i % 2 == 0 ? w0 : w1) + i);
    m.set_objective(Direction::Maximize, std::move(obj));
    return m;
  };

  SolverCache cache;
  BranchAndBoundOptions shared;
  shared.cache = &cache;
  shared.share_basis = true;
  for (const auto [w0, w1] : {std::pair{3.0, 5.0}, {4.0, 2.0}, {1.0, 9.0}}) {
    const Model m = build(w0, w1);
    const Solution s = solve_milp(m, shared);
    const Solution plain = solve_milp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, plain.objective, 1e-6);
    EXPECT_TRUE(m.is_feasible(s.values));
  }
}

TEST(LpWriter, ProducesParsableText) {
  Model m;
  const VarId x = m.add_integer("x", 0, 5);
  const VarId y = m.add_continuous("y", -kInfinity, 2.0);
  m.add_le(LinearExpr().add(x, 2).add(y, -1), 4, "cap");
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1).add(y, 3));
  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("cap:"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(Model, FeasibilityChecker) {
  Model m;
  const VarId x = m.add_integer("x", 0, 5);
  m.add_le(LinearExpr().add(x, 1), 3);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  EXPECT_TRUE(m.is_feasible({2.0}));
  EXPECT_FALSE(m.is_feasible({2.5})); // fractional integer
  EXPECT_FALSE(m.is_feasible({4.0})); // violates constraint
  EXPECT_FALSE(m.is_feasible({-1.0})); // violates bound
}

TEST(Model, NormalizeCombinesDuplicateTerms) {
  LinearExpr e;
  e.add(0, 1.0).add(1, 2.0).add(0, 3.0).add(1, -2.0);
  e.normalize();
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].first, 0);
  EXPECT_DOUBLE_EQ(e.terms()[0].second, 4.0);
}

} // namespace
} // namespace luis::ilp
