#include <gtest/gtest.h>

#include <cmath>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace luis::frontend {
namespace {

TEST(Lexer, TokenizesTheFullVocabulary) {
  const auto tokens = tokenize(
      "kernel k { array A[4] range [-1.5, 2]; for i in 0 .. 4 downto "
      "if else scalar <= >= == != + - * / % .. } # comment\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::End);
  EXPECT_EQ(tokens[0].kind, TokenKind::KwKernel);
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[1].text, "k");
  int reals = 0, ints = 0;
  for (const Token& t : tokens) {
    reals += t.kind == TokenKind::RealLiteral;
    ints += t.kind == TokenKind::IntLiteral;
    EXPECT_NE(t.kind, TokenKind::Error) << t.text;
  }
  EXPECT_EQ(reals, 1); // 1.5 (2 is an int literal)
  EXPECT_EQ(ints, 4);  // 4, 2, 0, 4
}

TEST(Lexer, DistinguishesDotDotFromFraction) {
  const auto tokens = tokenize("0 .. 4 1.5 0..4");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::IntLiteral, TokenKind::DotDot,
                       TokenKind::IntLiteral, TokenKind::RealLiteral,
                       TokenKind::IntLiteral, TokenKind::DotDot,
                       TokenKind::IntLiteral, TokenKind::End}));
}

TEST(Lexer, ReportsErrorsWithPosition) {
  const auto tokens = tokenize("kernel k {\n  @\n}");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::Error);
  EXPECT_EQ(tokens.back().line, 2);
}

constexpr const char* kSaxpySource = R"(
# saxpy: Y = a*X + Y over 16 elements
kernel saxpy {
  array X[16] range [-1.0, 1.0];
  array Y[16] range [-4.0, 4.0];
  for i in 0 .. 16 {
    Y[i] = 2.5 * X[i] + Y[i];
  }
}
)";

TEST(Parser, CompilesSaxpyAndExecutes) {
  ir::Module m;
  const CompileResult r = compile_kernel(m, kSaxpySource);
  ASSERT_TRUE(r.ok()) << r.error << " at " << r.line << ":" << r.column;
  ASSERT_TRUE(ir::verify(*r.function).ok())
      << ir::verify(*r.function).message();

  interp::ArrayStore store;
  for (int i = 0; i < 16; ++i) {
    store["X"].push_back(0.0625 * i - 0.5);
    store["Y"].push_back(1.0 - 0.125 * i);
  }
  const auto x = store["X"];
  const auto y = store["Y"];
  interp::TypeAssignment binary64;
  const interp::RunResult run = run_function(*r.function, binary64, store);
  ASSERT_TRUE(run.ok) << run.error;
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_DOUBLE_EQ(store["Y"][i], 2.5 * x[i] + y[i]);
}

TEST(Parser, ScalarsConditionalsAndCalls) {
  ir::Module m;
  const CompileResult r = compile_kernel(m, R"(
kernel norms {
  array A[8] range [0.0, 16.0];
  array B[8] range [0.0, 8.0];
  scalar acc range [0.0, 64.0];
  acc = 0.0;
  for i in 0 .. 8 {
    if (i < 4) {
      B[i] = sqrt(A[i]);
    } else {
      B[i] = min(A[i], 4.0) + max(A[i] - 8.0, 0.0);
    }
    acc = acc + B[i];
  }
  B[0] = acc / 8.0;
}
)");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(ir::verify(*r.function).ok());

  interp::ArrayStore store;
  for (int i = 0; i < 8; ++i) store["A"].push_back(static_cast<double>(i * 2));
  interp::TypeAssignment binary64;
  const interp::RunResult run = run_function(*r.function, binary64, store);
  ASSERT_TRUE(run.ok) << run.error;

  double acc = 0.0;
  std::vector<double> expect(8);
  for (int i = 0; i < 8; ++i) {
    const double a = static_cast<double>(i * 2);
    expect[static_cast<std::size_t>(i)] =
        i < 4 ? std::sqrt(a) : std::min(a, 4.0) + std::max(a - 8.0, 0.0);
    acc += expect[static_cast<std::size_t>(i)];
  }
  expect[0] = acc / 8.0;
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(store["B"][static_cast<std::size_t>(i)],
                     expect[static_cast<std::size_t>(i)]);
}

TEST(Parser, DescendingLoopsAndIndexArithmetic) {
  ir::Module m;
  const CompileResult r = compile_kernel(m, R"(
kernel rev {
  array A[6] range [0.0, 10.0];
  for i in 5 downto 1 {
    A[i] = A[i - 1] + 1.0;
  }
}
)");
  ASSERT_TRUE(r.ok()) << r.error;
  interp::ArrayStore store;
  store["A"] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  interp::TypeAssignment binary64;
  ASSERT_TRUE(run_function(*r.function, binary64, store).ok);
  EXPECT_EQ(store["A"], (std::vector<double>{1, 2, 3, 4, 5, 6}));
  // A[i] = A[i-1] + 1 descending: A[5]=A[4]+1=6, A[4]=A[3]+1=5, ... no-ops
  // on this input by construction; now a shifting input:
  store["A"] = {0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(run_function(*r.function, binary64, store).ok);
  EXPECT_EQ(store["A"], (std::vector<double>{0, 1, 1, 1, 1, 1}));
}

TEST(Parser, TriangularLoopOverLoopVariable) {
  ir::Module m;
  const CompileResult r = compile_kernel(m, R"(
kernel tri {
  array T[5][5] range [0.0, 1.0];
  for i in 0 .. 5 {
    for j in i .. 5 {
      T[i][j] = 1.0;
    }
  }
}
)");
  ASSERT_TRUE(r.ok()) << r.error;
  interp::ArrayStore store;
  interp::TypeAssignment binary64;
  ASSERT_TRUE(run_function(*r.function, binary64, store).ok);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_EQ(store["T"][static_cast<std::size_t>(i * 5 + j)],
                j >= i ? 1.0 : 0.0);
}

TEST(Parser, IntPromotionInRealContext) {
  ir::Module m;
  const CompileResult r = compile_kernel(m, R"(
kernel promo {
  array A[4] range [0.0, 10.0];
  for i in 0 .. 4 {
    A[i] = i * 2 + 1.0;  # i*2 is Int, promoted at the '+'
  }
}
)");
  ASSERT_TRUE(r.ok()) << r.error;
  interp::ArrayStore store;
  interp::TypeAssignment binary64;
  ASSERT_TRUE(run_function(*r.function, binary64, store).ok);
  EXPECT_EQ(store["A"], (std::vector<double>{1, 3, 5, 7}));
}

TEST(Parser, RejectsBrokenPrograms) {
  const char* cases[] = {
      "kernel {",                                      // missing name
      "kernel k { array A range [0,1]; }",             // missing dims
      "kernel k { A[0] = 1.0; }",                      // unknown array
      "kernel k { array A[2] range [0,1]; A[0] = ; }", // missing expr
      "kernel k { array A[2] range [0,1]; A[0] = f(1.0); }", // unknown fn
      "kernel k { array A[2] range [0,1]; for A in 0 .. 2 { } }", // shadow
      "kernel k { array A[2] range [0,1]; A[1.5] = 0.0; }", // real index
      "kernel k { array A[2] range [0,1]; if (1) { } }",    // not a cmp
  };
  for (const char* source : cases) {
    ir::Module m;
    const CompileResult r = compile_kernel(m, source);
    EXPECT_FALSE(r.ok()) << source;
    EXPECT_FALSE(r.error.empty()) << source;
  }
}

TEST(Parser, CompiledKernelRoundTripsThroughIrPrinter) {
  ir::Module m1;
  const CompileResult r = compile_kernel(m1, kSaxpySource);
  ASSERT_TRUE(r.ok());
  const std::string text = ir::print_function(*r.function);
  ir::Module m2;
  const ir::ParseResult reparsed = ir::parse_function(m2, text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(ir::print_function(*reparsed.function), text);
}

} // namespace
} // namespace luis::frontend
