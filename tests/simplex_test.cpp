#include <gtest/gtest.h>

#include <cmath>

#include "ilp/simplex.hpp"
#include "support/rng.hpp"

namespace luis::ilp {
namespace {

TEST(Simplex, TextbookTwoVariableMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), obj 36.
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  m.add_le(LinearExpr().add(x, 1), 4);
  m.add_le(LinearExpr().add(y, 2), 12);
  m.add_le(LinearExpr().add(x, 3).add(y, 2), 18);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 3).add(y, 5));

  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_NEAR(s.value(x), 2.0, 1e-6);
  EXPECT_NEAR(s.value(y), 6.0, 1e-6);
}

TEST(Simplex, MinimizationWithGeConstraints) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7, y=3, obj 23.
  Model m;
  const VarId x = m.add_continuous("x", 2.0);
  const VarId y = m.add_continuous("y", 3.0);
  m.add_ge(LinearExpr().add(x, 1).add(y, 1), 10);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 2).add(y, 3));

  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 23.0, 1e-6);
  EXPECT_NEAR(s.value(x), 7.0, 1e-6);
  EXPECT_NEAR(s.value(y), 3.0, 1e-6);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y + 3z s.t. x+y+z = 6, x - y = 1, z >= 1.
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  const VarId z = m.add_continuous("z", 1.0);
  m.add_eq(LinearExpr().add(x, 1).add(y, 1).add(z, 1), 6);
  m.add_eq(LinearExpr().add(x, 1).add(y, -1), 1);
  m.set_objective(Direction::Minimize,
                  LinearExpr().add(x, 1).add(y, 2).add(z, 3));

  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  // x - y = 1 and x + y = 6 - z; cost favours small z ... z=1, x=3, y=2.
  EXPECT_NEAR(s.value(z), 1.0, 1e-6);
  EXPECT_NEAR(s.value(x), 3.0, 1e-6);
  EXPECT_NEAR(s.value(y), 2.0, 1e-6);
  EXPECT_NEAR(s.objective, 10.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_continuous("x");
  m.add_le(LinearExpr().add(x, 1), 1);
  m.add_ge(LinearExpr().add(x, 1), 2);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  EXPECT_EQ(solve_lp(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_continuous("x");
  m.add_ge(LinearExpr().add(x, 1), 1);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 1));
  EXPECT_EQ(solve_lp(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 3.5);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 1));
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(x), 3.5, 1e-6);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x in [-5, 5], y >= x + 2 -> x=-5, y=-3.
  Model m;
  const VarId x = m.add_continuous("x", -5.0, 5.0);
  const VarId y = m.add_continuous("y", -kInfinity, kInfinity);
  m.add_ge(LinearExpr().add(y, 1).add(x, -1), 2);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1).add(y, 1));
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(x), -5.0, 1e-6);
  EXPECT_NEAR(s.value(y), -3.0, 1e-6);
}

TEST(Simplex, FreeVariableSplit) {
  // min |style| objective via free variable: min y s.t. y >= x - 3,
  // y >= 3 - x, x free -> x = 3, y = 0.
  Model m;
  const VarId x = m.add_continuous("x", -kInfinity, kInfinity);
  const VarId y = m.add_continuous("y", -kInfinity, kInfinity);
  m.add_ge(LinearExpr().add(y, 1).add(x, -1), -3);
  m.add_ge(LinearExpr().add(y, 1).add(x, 1), 3);
  m.set_objective(Direction::Minimize, LinearExpr().add(y, 1));
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-6);
  EXPECT_NEAR(s.value(x), 3.0, 1e-6);
}

TEST(Simplex, FixedVariablesAreSubstituted) {
  Model m;
  const VarId x = m.add_continuous("x", 2.0, 2.0);
  const VarId y = m.add_continuous("y");
  m.add_le(LinearExpr().add(x, 1).add(y, 1), 10);
  m.set_objective(Direction::Maximize, LinearExpr().add(y, 1));
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(x), 2.0, 1e-12);
  EXPECT_NEAR(s.value(y), 8.0, 1e-6);
}

TEST(Simplex, BoundsOverridesApply) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 10.0);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 1));
  const BoundsOverride o{x, 0.0, 4.0};
  const Solution s = solve_lp(m, {}, std::span(&o, 1));
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.value(x), 4.0, 1e-6);
}

TEST(Simplex, CrossedOverrideBoundsAreInfeasible) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 10.0);
  m.set_objective(Direction::Minimize, LinearExpr().add(x, 1));
  const BoundsOverride o{x, 5.0, 3.0};
  EXPECT_EQ(solve_lp(m, {}, std::span(&o, 1)).status, SolveStatus::Infeasible);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-ish degeneracy: many redundant constraints through a vertex.
  Model m;
  const VarId x = m.add_continuous("x");
  const VarId y = m.add_continuous("y");
  for (int i = 0; i < 20; ++i)
    m.add_le(LinearExpr().add(x, 1.0 + i * 1e-9).add(y, 1.0), 10.0);
  m.add_le(LinearExpr().add(x, 1), 10);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 2).add(y, 1));
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-5);
}

TEST(Simplex, ObjectiveConstantIsIncluded) {
  Model m;
  const VarId x = m.add_continuous("x", 0.0, 1.0);
  m.set_objective(Direction::Maximize, LinearExpr().add(x, 2).add_constant(5));
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-6);
}

TEST(Simplex, SolutionIsModelFeasible) {
  Rng rng(5);
  // Random dense feasible LPs: Ax <= b with b chosen so x=1 is feasible.
  for (int trial = 0; trial < 20; ++trial) {
    Model m;
    const int n = 8, rows = 12;
    std::vector<VarId> xs;
    for (int j = 0; j < n; ++j)
      xs.push_back(m.add_continuous("x" + std::to_string(j), 0.0, 10.0));
    for (int i = 0; i < rows; ++i) {
      LinearExpr e;
      double row_sum = 0;
      for (int j = 0; j < n; ++j) {
        const double a = rng.next_double(-2, 2);
        e.add(xs[static_cast<std::size_t>(j)], a);
        row_sum += a;
      }
      m.add_le(std::move(e), row_sum + rng.next_double(0, 5));
    }
    LinearExpr obj;
    for (int j = 0; j < n; ++j)
      obj.add(xs[static_cast<std::size_t>(j)], rng.next_double(-1, 1));
    m.set_objective(Direction::Maximize, std::move(obj));

    const Solution s = solve_lp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(s.values, 1e-5)) << "trial " << trial;
    // x = 1 is feasible, so the max must be at least the objective there.
    std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
    EXPECT_GE(s.objective, m.objective_value(ones) - 1e-6);
  }
}

// Beale's classic cycling example: Dantzig pricing with a naive tie-break
// cycles forever on this LP. Both cores must terminate (via Bland's rule
// anti-cycling) at the optimum -0.05.
TEST(Simplex, BealeCyclingExampleTerminatesInBothCores) {
  for (const LpCore core : {LpCore::Dense, LpCore::Revised}) {
    Model m;
    const VarId x4 = m.add_continuous("x4");
    const VarId x5 = m.add_continuous("x5");
    const VarId x6 = m.add_continuous("x6");
    const VarId x7 = m.add_continuous("x7");
    m.add_le(LinearExpr().add(x4, 0.25).add(x5, -60.0).add(x6, -0.04).add(x7, 9.0), 0.0);
    m.add_le(LinearExpr().add(x4, 0.5).add(x5, -90.0).add(x6, -0.02).add(x7, 3.0), 0.0);
    m.add_le(LinearExpr().add(x6, 1.0), 1.0);
    m.set_objective(Direction::Minimize, LinearExpr()
                                             .add(x4, -0.75)
                                             .add(x5, 150.0)
                                             .add(x6, -0.02)
                                             .add(x7, 6.0));
    SimplexOptions opt;
    opt.core = core;
    const Solution s = solve_lp(m, opt);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << to_string(core);
    EXPECT_NEAR(s.objective, -0.05, 1e-9) << to_string(core);
  }
}

// Redundant (linearly dependent) equality rows leave a phase-1 artificial
// stuck in the basis at zero. The row must be neutralized, not left live
// where a phase-2 pivot could resurrect the artificial and corrupt the
// solution.
TEST(Simplex, RedundantEqualityRowsAreHandled) {
  for (const LpCore core : {LpCore::Dense, LpCore::Revised}) {
    Model m;
    const VarId x = m.add_continuous("x");
    const VarId y = m.add_continuous("y");
    m.add_eq(LinearExpr().add(x, 1.0).add(y, 1.0), 4.0);
    m.add_eq(LinearExpr().add(x, 2.0).add(y, 2.0), 8.0); // 2x the first row
    m.add_eq(LinearExpr().add(x, 1.0).add(y, 1.0), 4.0); // exact duplicate
    m.add_le(LinearExpr().add(x, 1.0), 3.0);
    m.set_objective(Direction::Maximize, LinearExpr().add(x, 2.0).add(y, 1.0));
    SimplexOptions opt;
    opt.core = core;
    const Solution s = solve_lp(m, opt);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << to_string(core);
    EXPECT_NEAR(s.objective, 2.0 * 3.0 + 1.0, 1e-7) << to_string(core);
    EXPECT_TRUE(m.is_feasible(s.values, 1e-6)) << to_string(core);
  }
}

// Redundant rows whose right-hand sides contradict each other must still
// be reported infeasible, not silently dropped.
TEST(Simplex, InconsistentRedundantRowsAreInfeasible) {
  for (const LpCore core : {LpCore::Dense, LpCore::Revised}) {
    Model m;
    const VarId x = m.add_continuous("x");
    const VarId y = m.add_continuous("y");
    m.add_eq(LinearExpr().add(x, 1.0).add(y, 1.0), 4.0);
    m.add_eq(LinearExpr().add(x, 2.0).add(y, 2.0), 9.0); // contradicts 2x row 0
    m.set_objective(Direction::Minimize, LinearExpr().add(x, 1.0));
    SimplexOptions opt;
    opt.core = core;
    EXPECT_EQ(solve_lp(m, opt).status, SolveStatus::Infeasible) << to_string(core);
  }
}

} // namespace
} // namespace luis::ilp
