// Observability tests: trace-event validity (the emitted document parses
// as JSON, every B has its E on the same thread, per-thread timestamps
// are monotonic), the metrics registry, and the VM hot-spot profiler's
// exactness invariant — the per-instruction costs sum to the run's
// platform::simulated_time, bit for bit up to summation order.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "core/sweep.hpp"
#include "interp/bytecode.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "platform/cost_model.hpp"
#include "platform/optime.hpp"
#include "polybench/polybench.hpp"
#include "support/thread_pool.hpp"

namespace luis::obs {
namespace {

// ---------------------------------------------------------------------------
// A deliberately strict recursive-descent JSON parser: no trailing
// garbage, no unescaped control characters, numbers via strtod. Small
// enough to live in the test so the validity check shares no code with
// the writer it is checking.

class JsonParser {
public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= s_.size() || !std::isxdigit(s_[pos_ + i]))
              return false;
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(s_[pos_])) return false;
    while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(s_[pos_])) return false;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(s_[pos_])) return false;
      while (pos_ < s_.size() && std::isdigit(s_[pos_])) ++pos_;
    }
    return pos_ > start;
  }
  bool object() {
    ++pos_; // consume '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == '}') return ++pos_, true;
      if (s_[pos_] != ',') return false;
      ++pos_;
    }
  }
  bool array() {
    ++pos_; // consume '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ']') return ++pos_, true;
      if (s_[pos_] != ',') return false;
      ++pos_;
    }
  }
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
    case '{': return object();
    case '[': return array();
    case '"': return string();
    case 't': return literal("true");
    case 'f': return literal("false");
    case 'n': return literal("null");
    default: return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view s) { return JsonParser(s).valid(); }

/// Asserts that the events are well-formed: every E closes the most
/// recent B on the same tid, timestamps never go backwards per tid, and
/// nothing remains open at the end. Returns tids that carried B events.
std::set<std::uint32_t> check_event_stream(const std::vector<TraceEvent>& evs) {
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  std::map<std::uint32_t, double> last_ts;
  std::set<std::uint32_t> span_tids;
  for (const TraceEvent& e : evs) {
    EXPECT_GE(e.ts_micros, 0.0);
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_GE(e.ts_micros, it->second);
    last_ts[e.tid] = e.ts_micros;
    if (e.phase == 'B') {
      stacks[e.tid].push_back(e.name);
      span_tids.insert(e.tid);
    } else if (e.phase == 'E') {
      if (stacks[e.tid].empty()) {
        ADD_FAILURE() << "E '" << e.name << "' without open B on tid "
                      << e.tid;
        continue;
      }
      EXPECT_EQ(stacks[e.tid].back(), e.name);
      stacks[e.tid].pop_back();
    } else {
      EXPECT_EQ(e.phase, 'i');
    }
    if (!e.args_json.empty()) EXPECT_TRUE(is_valid_json(e.args_json));
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  return span_tids;
}

/// RAII guard: every tracing test leaves the global sink stopped+empty so
/// test order cannot matter.
struct TraceGuard {
  TraceGuard() { trace().start(); }
  ~TraceGuard() {
    trace().stop();
    trace().clear();
  }
};

// ---------------------------------------------------------------------------
// Trace sink

TEST(Trace, DisabledByDefaultAndSpansAreNoOps) {
  ASSERT_FALSE(tracing_enabled());
  bool args_built = false;
  {
    TraceSpan span("never", "test", [&] {
      args_built = true;
      return Args().str("k", "v").done();
    });
    EXPECT_FALSE(span.live());
    instant("nope", "test");
  }
  EXPECT_FALSE(args_built) << "lazy args must not be built while disabled";
  EXPECT_EQ(trace().event_count(), 0u);
}

TEST(Trace, SpansNestAndBalanceAndDocumentParses) {
  TraceGuard guard;
  {
    TraceSpan outer("outer", "test",
                    Args().str("kernel", "tri\"solv\\").num("jobs", 3L).done());
    TraceSpan inner("inner", "test");
    instant("tick", "test", Args().num("n", 1L).boolean("ok", true).done());
  }
  trace().stop();

  const std::vector<TraceEvent> evs = trace().snapshot();
  ASSERT_EQ(evs.size(), 5u); // B B i E E
  check_event_stream(evs);
  EXPECT_EQ(evs[0].name, "outer");
  EXPECT_EQ(evs[1].name, "inner");
  EXPECT_EQ(evs[2].phase, 'i');
  EXPECT_EQ(evs[3].name, "inner");
  EXPECT_EQ(evs[4].name, "outer");

  const std::string doc = trace().to_json();
  EXPECT_TRUE(is_valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"build\""), std::string::npos);
  EXPECT_NE(doc.find(build_info().git_describe), std::string::npos);
}

TEST(Trace, SpanOpenAcrossStopStillEmitsItsEnd) {
  trace().start();
  auto* span = new TraceSpan("crossing", "test");
  trace().stop();
  delete span; // E emitted after stop: the written trace must stay balanced
  const std::vector<TraceEvent> evs = trace().snapshot();
  ASSERT_EQ(evs.size(), 2u);
  check_event_stream(evs);
  trace().clear();
}

TEST(Trace, NonFiniteArgValuesStayValidJson) {
  // Branch & bound roots carry a -inf bound; JSON has no inf literal.
  const std::string args = Args()
                               .num("lo", -std::numeric_limits<double>::infinity())
                               .num("hi", std::numeric_limits<double>::infinity())
                               .num("nan", std::nan(""))
                               .num("v", 1.5)
                               .done();
  EXPECT_TRUE(is_valid_json(args)) << args;
  EXPECT_NE(args.find("\"-inf\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.counter("a.count").inc();
  reg.counter("a.count").inc(4);
  EXPECT_EQ(reg.counter("a.count").value(), 5);

  reg.set_gauge("b.gauge", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("b.gauge").value(), 2.5);

  Histogram& h = reg.histogram("c.hist");
  h.observe(1e-8);
  h.observe(0.5);
  h.observe(2.0);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 1e-8 + 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(snap.min, 1e-8);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
  long total = 0;
  for (long b : snap.buckets) total += b;
  EXPECT_EQ(total, 3);
}

TEST(Metrics, BucketBoundsGrowMonotonically) {
  for (int i = 1; i < Histogram::kBuckets - 1; ++i)
    EXPECT_GT(Histogram::upper_bound(i), Histogram::upper_bound(i - 1));
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));
}

TEST(Metrics, PercentileEdgeCases) {
  // Empty snapshot: no samples, no estimate.
  Histogram::Snapshot empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  // One sample: every quantile collapses to it (the bucket edges are
  // clamped to the observed min == max).
  Histogram one;
  one.observe(0.3);
  const Histogram::Snapshot s1 = one.snapshot();
  EXPECT_DOUBLE_EQ(s1.percentile(0.0), 0.3);
  EXPECT_DOUBLE_EQ(s1.percentile(0.5), 0.3);
  EXPECT_DOUBLE_EQ(s1.percentile(0.99), 0.3);
  EXPECT_DOUBLE_EQ(s1.percentile(1.0), 0.3);

  // All samples inside one bucket: the estimate interpolates inside
  // [min, max], never escaping to the bucket's wider edges.
  Histogram narrow;
  narrow.observe(2e-7);
  narrow.observe(3e-7);
  const Histogram::Snapshot sn = narrow.snapshot();
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_GE(sn.percentile(q), 2e-7);
    EXPECT_LE(sn.percentile(q), 3e-7);
  }

  // A sample in the last (unbounded) bucket: the +inf edge is clamped to
  // the observed max, so the estimate stays finite.
  Histogram top;
  top.observe(1e30);
  top.observe(2e30);
  const Histogram::Snapshot st = top.snapshot();
  EXPECT_LE(st.percentile(0.99), 2e30);
  EXPECT_TRUE(std::isfinite(st.percentile(0.99)));

  // A sample below the first upper bound: the bucket's lower edge is 0,
  // clamped up to the observed min.
  Histogram tiny;
  tiny.observe(1e-9);
  tiny.observe(1e-9);
  const Histogram::Snapshot sy = tiny.snapshot();
  EXPECT_GE(sy.percentile(0.5), 1e-9);
  EXPECT_LE(sy.percentile(0.5), 1e-7);
}

TEST(Metrics, PercentileIsMonotoneAndBucketAccurate) {
  // 100 samples: 50 around 1e-5, 40 around 1e-3, 10 around 1e-1. The
  // decades are far enough apart that each lands in a distinct bucket.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.observe(1e-5);
  for (int i = 0; i < 40; ++i) h.observe(1e-3);
  for (int i = 0; i < 10; ++i) h.observe(1e-1);
  const Histogram::Snapshot s = h.snapshot();

  // p50 must resolve within the 1e-5 sample's bucket, p90 within 1e-3's,
  // p99 within 1e-1's (bucket = smallest upper bound >= the sample).
  const auto bucket_of = [](double v) {
    int i = 0;
    while (i < Histogram::kBuckets - 1 && v > Histogram::upper_bound(i)) ++i;
    return i;
  };
  const auto covers = [&](double estimate, double sample) {
    const int b = bucket_of(sample);
    const double lo = b == 0 ? 0.0 : Histogram::upper_bound(b - 1);
    return estimate > lo && estimate <= Histogram::upper_bound(b);
  };
  EXPECT_TRUE(covers(s.percentile(0.5), 1e-5)) << s.percentile(0.5);
  EXPECT_TRUE(covers(s.percentile(0.9), 1e-3)) << s.percentile(0.9);
  EXPECT_TRUE(covers(s.percentile(0.99), 1e-1)) << s.percentile(0.99);

  // Monotone in q, bounded by the extrema.
  double prev = s.percentile(0.0);
  EXPECT_DOUBLE_EQ(prev, s.min);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = s.percentile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(s.percentile(1.0), s.max);

  // The dumps surface the summary quantiles.
  MetricsRegistry reg;
  reg.histogram("q.hist").observe(0.5);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
}

TEST(Metrics, InstrumentAddressesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("stable");
  for (int i = 0; i < 64; ++i) reg.counter("filler." + std::to_string(i));
  EXPECT_EQ(&c, &reg.counter("stable"));
}

TEST(Metrics, DumpsParseAndCarryTheBuildStamp) {
  MetricsRegistry reg;
  reg.counter("x.count").inc(7);
  reg.set_gauge("y \"g\"", 1.0); // name needing escaping
  reg.histogram("z.hist").observe(0.25);

  const std::string json = reg.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"build\""), std::string::npos);
  EXPECT_NE(json.find("x.count"), std::string::npos);
  EXPECT_NE(json.find("\\\"g\\\""), std::string::npos);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(Metrics, BuildInfoIsPopulated) {
  EXPECT_FALSE(version_string().empty());
  EXPECT_TRUE(is_valid_json(build_info_json())) << build_info_json();
  EXPECT_NE(version_string().find(build_info().git_describe),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Hot-spot profiler: the attribution must be exact, not approximate.

void expect_exact_attribution(const std::string& kernel,
                              numrep::ConcreteType type) {
  ir::Module module;
  polybench::BuiltKernel built = polybench::build_kernel(kernel, module);
  const interp::TypeAssignment types =
      interp::TypeAssignment::uniform(*built.function, type);
  const interp::CompiledProgram program =
      interp::compile_program(*built.function, types, {});

  interp::VmProfile profile;
  interp::RunOptions opt;
  opt.vm_profile = &profile;
  interp::ArrayStore store = built.inputs;
  const interp::RunResult run =
      interp::run_program(program, *built.function, store, opt);
  ASSERT_TRUE(run.ok) << run.error;

  const platform::OpTimeTable& table = platform::stm32_table();
  const HotSpotReport report =
      build_hotspot_report(program, *built.function, profile, table);
  const double simulated = platform::simulated_time(run.counters, table);

  EXPECT_NEAR(report.total_cost, simulated,
              1e-9 * std::max(1.0, std::abs(simulated)))
      << kernel << " under " << type.name();

  double entry_sum = 0.0;
  double share_sum = 0.0;
  for (const HotSpot& h : report.entries) {
    entry_sum += h.cost;
    share_sum += h.share;
    EXPECT_GE(h.executions, 0);
  }
  EXPECT_NEAR(entry_sum, report.total_cost,
              1e-9 * std::max(1.0, report.total_cost));
  if (report.total_cost > 0) EXPECT_NEAR(share_sum, 1.0, 1e-9);
  for (std::size_t i = 1; i < report.entries.size(); ++i)
    EXPECT_GE(report.entries[i - 1].cost, report.entries[i].cost)
        << "ranking must be cost-descending";
}

TEST(Profile, AttributionIsExactUnderBinary32) {
  expect_exact_attribution("trisolv", {numrep::kBinary32, 0});
}

TEST(Profile, AttributionIsExactUnderFixedPoint) {
  expect_exact_attribution("atax", {numrep::kFixed32, 16});
}

TEST(Profile, AttributionIsExactWithControlFlowHeavyKernel) {
  // cholesky has selects/guards plus div/sqrt-heavy rows; durbin runs
  // phi-rich recurrences — both stress the edge-move attribution.
  expect_exact_attribution("cholesky", {numrep::kBinary64, 0});
  expect_exact_attribution("durbin", {numrep::kBinary32, 0});
}

TEST(Profile, AttributionIsExactUnderATunedMixedAssignment) {
  ir::Module module;
  polybench::BuiltKernel built = polybench::build_kernel("trisolv", module);
  const platform::OpTimeTable& table = platform::stm32_table();

  core::PipelineOptions popt;
  popt.materialize_casts = false;
  const core::PipelineResult tuned = core::tune_kernel(
      *built.function, table, core::TuningConfig::fast(), popt);

  const interp::CompiledProgram program = interp::compile_program(
      *built.function, tuned.allocation.assignment, {});
  interp::VmProfile profile;
  interp::RunOptions opt;
  opt.vm_profile = &profile;
  interp::ArrayStore store = built.inputs;
  const interp::RunResult run =
      interp::run_program(program, *built.function, store, opt);
  ASSERT_TRUE(run.ok) << run.error;

  const HotSpotReport report =
      build_hotspot_report(program, *built.function, profile, table);
  const double simulated = platform::simulated_time(run.counters, table);
  EXPECT_NEAR(report.total_cost, simulated,
              1e-9 * std::max(1.0, std::abs(simulated)));
  EXPECT_GT(report.total_cost, 0.0);
}

TEST(Profile, ReportRendersTextAndValidJson) {
  ir::Module module;
  polybench::BuiltKernel built = polybench::build_kernel("trisolv", module);
  const interp::TypeAssignment types = interp::TypeAssignment::uniform(
      *built.function, {numrep::kBinary32, 0});
  const interp::CompiledProgram program =
      interp::compile_program(*built.function, types, {});
  interp::VmProfile profile;
  interp::RunOptions opt;
  opt.vm_profile = &profile;
  interp::ArrayStore store = built.inputs;
  ASSERT_TRUE(interp::run_program(program, *built.function, store, opt).ok);

  const HotSpotReport report = build_hotspot_report(
      program, *built.function, profile, platform::stm32_table());
  ASSERT_FALSE(report.entries.empty());

  const std::string text = hotspot_text(report, 3);
  EXPECT_NE(text.find("hot spots"), std::string::npos);
  EXPECT_NE(text.find(report.entries[0].text), std::string::npos);
  EXPECT_NE(text.find("more"), std::string::npos) << "truncation note";

  const std::string json = hotspot_json(report);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"hotspots\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing under the parallel sweep: this is the test the TSan CI job
// exercises (its -R filter selects Sweep* cases), pinning the sink's
// thread-safety claims, not just its output format.

TEST(SweepTracing, ParallelSweepEmitsBalancedSpansFromWorkerThreads) {
  TraceGuard guard;
  core::SweepOptions opt;
  opt.kernels = {"trisolv", "atax"};
  opt.configs = {"Fast"};
  opt.platforms = {"Stm32"};
  opt.include_taffo = false;
  opt.threads = 2;
  opt.check_determinism = false;
  opt.verbose = false;
  const core::SweepResult result = core::run_sweep(opt);
  EXPECT_EQ(result.stats.failed, 0);
  trace().stop();

  const std::vector<TraceEvent> evs = trace().snapshot();
  check_event_stream(evs);

  // The pool's shared queue makes the job->thread distribution timing-
  // dependent (one worker can drain a short queue before the other
  // wakes), so only the deterministic facts are pinned here; the
  // guaranteed two-thread case is ThreadPoolTracing below.
  std::size_t job_spans = 0, vm_spans = 0;
  for (const TraceEvent& e : evs) {
    if (e.phase != 'B') continue;
    if (e.name == "sweep.job") ++job_spans;
    if (e.name == "vm.execute" || e.name == "vm.compile") ++vm_spans;
  }
  EXPECT_EQ(job_spans, result.jobs.size());
  EXPECT_GT(vm_spans, 0u);
  EXPECT_TRUE(is_valid_json(trace().to_json()));

  // The instrumented subsystems also reported into the global registry.
  EXPECT_GT(metrics().counter("sweep.runs").value(), 0);
  EXPECT_GT(metrics().counter("ilp.solves").value(), 0);
  EXPECT_TRUE(is_valid_json(metrics().to_json()));
}

// Two pool workers record concurrently, held at a barrier until both are
// running, so two distinct thread timelines are guaranteed — the
// deterministic version of the multi-thread claim, and the hot loop TSan
// checks for races in the per-thread buffers and tid assignment.
TEST(ThreadPoolTracing, ConcurrentWorkersRecordOnDistinctThreads) {
  TraceGuard guard;
  constexpr int kWorkers = 2;
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  {
    support::ThreadPool pool(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.submit([&, w] {
        {
          std::unique_lock<std::mutex> lock(m);
          ++arrived;
          cv.notify_all();
          cv.wait(lock, [&] { return arrived == kWorkers; });
        }
        for (int i = 0; i < 200; ++i) {
          TraceSpan span("pool.task", "test", [&] {
            return Args().num("worker", w).num("i", i).done();
          });
          if (i % 50 == 0)
            instant("pool.tick", "test", Args().num("i", i).done());
        }
      });
    }
    pool.wait_idle();
  }
  trace().stop();

  const std::vector<TraceEvent> evs = trace().snapshot();
  const std::set<std::uint32_t> span_tids = check_event_stream(evs);
  EXPECT_EQ(span_tids.size(), kWorkers);
  EXPECT_TRUE(is_valid_json(trace().to_json()));
}

} // namespace
} // namespace luis::obs
