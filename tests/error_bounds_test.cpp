#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/error_bounds.hpp"
#include "analysis/lint.hpp"
#include "interp/engine.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/parser.hpp"
#include "numrep/quantize.hpp"
#include "support/rng.hpp"
#include "vra/range_analysis.hpp"

namespace luis::analysis {
namespace {

using interp::TypeAssignment;
using ir::Array;
using ir::Instruction;
using ir::IVal;
using ir::KernelBuilder;
using ir::Opcode;
using ir::RVal;
using ir::ScalarType;
using numrep::ConcreteType;

constexpr ConcreteType kF64{numrep::kBinary64, 0};
constexpr ConcreteType kF32{numrep::kBinary32, 0};
constexpr ConcreteType kBf16{numrep::kBfloat16, 0};

/// Covers every Real register (arrays + Real instructions) except `skip`.
TypeAssignment assign_all_except(const ir::Function& f, ConcreteType type,
                                 const ir::Value* skip = nullptr) {
  TypeAssignment out;
  for (const auto& arr : f.arrays())
    if (arr.get() != skip) out.set(arr.get(), type);
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ScalarType::Real && inst.get() != skip)
        out.set(inst.get(), type);
  return out;
}

/// First Real-typed instruction with `op` (skips integer index arithmetic).
const Instruction* find_real_inst(const ir::Function& f, Opcode op) {
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->opcode() == op && inst->type() == ScalarType::Real)
        return inst.get();
  return nullptr;
}

/// C[i] = A[i] + B[i] over 8 elements annotated [0, 1].
ir::Function* build_add(ir::Module& m) {
  KernelBuilder kb(m, "add");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  Array* B = kb.array("B", {8}, 0.0, 1.0);
  Array* C = kb.array("C", {8}, 0.0, 2.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(A, {i}) + kb.load(B, {i}), C, {i});
  });
  return kb.finish();
}

ErrorAnalysisResult analyze(const ir::Function& f,
                            const TypeAssignment& assignment) {
  return analyze_errors(f, assignment, vra::analyze_ranges(f));
}

// ---------------------------------------------------------------------------
// quantization_bound: the per-read rounding model everything else builds on.
// ---------------------------------------------------------------------------

// Regression for a real soundness bug the fuzz oracle found: 2^-IEBW is
// already the *half-ulp* for float formats (Definition-1 eps), but the
// lattice *step* for fixed point and posits. Halving uniformly certified
// every float read at half its true worst-case rounding error.
TEST(QuantizationBound, FloatHalfUlpIsNotHalvedAgain) {
  // binary32 on [1, 2): ulp 2^-23, worst round-to-nearest error 2^-24.
  EXPECT_GE(quantization_bound(kF32, 1.9), 0x1p-24);
  EXPECT_LE(quantization_bound(kF32, 1.9), 0x1p-22);
  // bfloat16 on [8, 16): ulp 2^-4, worst error 2^-5. The buggy bound was
  // 2^-6 and real quantized runs exceeded it.
  EXPECT_GE(quantization_bound(kBf16, 10.0), 0x1p-5);
  EXPECT_LE(quantization_bound(kBf16, 10.0), 0x1p-3);
}

TEST(QuantizationBound, CoversSampledWorstCaseAcrossFormats) {
  const std::vector<ConcreteType> formats = {
      kBf16,
      {numrep::kBinary16, 0},
      kF32,
      {numrep::kPosit8, 0},
      {numrep::kPosit16, 0},
      {numrep::kPosit32, 0},
      {numrep::kFixed16, 8},
      {numrep::kFixed32, 20},
  };
  Rng rng(0xE44);
  for (const ConcreteType& t : formats) {
    for (const double m : {0.75, 1.0, 7.5, 100.0}) {
      const double bound = quantization_bound(t, m);
      ASSERT_TRUE(std::isfinite(bound)) << t.name() << " m=" << m;
      double worst = 0.0;
      for (int s = 0; s < 4000; ++s) {
        const double x = rng.next_double(-m, m);
        worst = std::max(worst, std::abs(numrep::quantize(t, x) - x));
      }
      // Endpoints stress saturation for narrow formats.
      worst = std::max(worst, std::abs(numrep::quantize(t, m) - m));
      worst = std::max(worst, std::abs(numrep::quantize(t, -m) + m));
      EXPECT_LE(worst, bound) << t.name() << " m=" << m;
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-level certificates.
// ---------------------------------------------------------------------------

TEST(ErrorBounds, Binary64AddIsNearExact) {
  ir::Module m;
  ir::Function* f = build_add(m);
  const ErrorAnalysisResult r = analyze(*f, assign_all_except(*f, kF64));
  const ir::Value* C = f->arrays().back().get();
  EXPECT_TRUE(r.stats.converged);
  EXPECT_GT(r.errors.of(C), 0.0);
  EXPECT_LT(r.errors.of(C), 1e-12);
  EXPECT_FALSE(r.divergent_control);
  EXPECT_EQ(r.capped_bounds, 0);
  EXPECT_FALSE(r.assumes_finite_run);
}

TEST(ErrorBounds, CoarserFormatsCertifyLargerErrors) {
  ir::Module m;
  ir::Function* f = build_add(m);
  const double e64 =
      analyze(*f, assign_all_except(*f, kF64)).errors.of(f->arrays()[2].get());
  const double e32 =
      analyze(*f, assign_all_except(*f, kF32)).errors.of(f->arrays()[2].get());
  const double e16 =
      analyze(*f, assign_all_except(*f, kBf16)).errors.of(f->arrays()[2].get());
  EXPECT_LT(e64, e32);
  EXPECT_LT(e32, e16);
  EXPECT_TRUE(std::isfinite(e16));
}

// The oracle the fuzz target automates, pinned on one deterministic case:
// a measured quantized-vs-reference deviation never exceeds the certified
// bound (reference run certified under binary64 and added to the budget).
TEST(ErrorBounds, MeasuredDeviationStaysWithinCertified) {
  ir::Module m;
  ir::Function* f = build_add(m);
  interp::ArrayStore store;
  Rng rng(0x5EED);
  for (const char* name : {"A", "B"}) {
    std::vector<double> buf(8);
    for (double& v : buf) v = rng.next_double(0.0, 1.0);
    store[name] = buf;
  }
  store["C"] = std::vector<double>(8, 0.0);

  const auto engine = interp::make_engine(interp::EngineKind::Reference);
  interp::ArrayStore reference = store;
  ASSERT_TRUE(engine->run(*f, TypeAssignment(), reference).ok);
  const TypeAssignment coarse = assign_all_except(*f, kBf16);
  interp::ArrayStore quantized = store;
  ASSERT_TRUE(engine->run(*f, coarse, quantized).ok);

  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const ir::Value* C = f->arrays()[2].get();
  const double budget =
      analyze_errors(*f, coarse, ranges).errors.of(C) +
      analyze_errors(*f, TypeAssignment(), ranges).errors.of(C);
  ASSERT_TRUE(std::isfinite(budget));
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_LE(std::abs(quantized["C"][i] - reference["C"][i]), budget) << i;
}

TEST(ErrorBounds, AccumulatorLoopConvergesFinite) {
  ir::Module m;
  KernelBuilder kb(m, "acc");
  Array* A = kb.array("A", {16}, 0.0, 1.0);
  Array* S = kb.array("S", {1}, 0.0, 16.0);
  kb.for_loop("i", 0, 16, [&](IVal i) {
    kb.store(kb.load(S, {kb.idx(0)}) + kb.load(A, {i}), S, {kb.idx(0)});
  });
  ir::Function* f = kb.finish();

  const ErrorAnalysisResult r = analyze(*f, assign_all_except(*f, kF32));
  EXPECT_TRUE(r.stats.converged);
  const double e = r.errors.of(S);
  EXPECT_GT(e, 0.0);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_LT(e, 1e-3); // 16 binary32 adds of O(1) values
}

// A CondBr on an FCmp lets the quantized and exact runs take different
// paths; stores must charge the representation cap. Fixed point saturates
// in hardware (unconditional cap); a float cap carries the finite-run side
// condition.
TEST(ErrorBounds, DivergentControlChargesRepresentationCap) {
  ir::Module m;
  KernelBuilder kb(m, "div");
  Array* A = kb.array("A", {8}, 0.0, 1.0);
  Array* B = kb.array("B", {8}, 0.0, 2.0);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    RVal x = kb.load(A, {i});
    kb.if_then(x < kb.real(0.5), [&] { kb.store(x + x, B, {i}); });
  });
  ir::Function* f = kb.finish();

  const ErrorAnalysisResult fixed =
      analyze(*f, assign_all_except(*f, {numrep::kFixed16, 8}));
  EXPECT_TRUE(fixed.divergent_control);
  EXPECT_GT(fixed.capped_bounds, 0);
  EXPECT_FALSE(fixed.assumes_finite_run);
  const double ef = fixed.errors.of(B);
  EXPECT_TRUE(std::isfinite(ef));
  EXPECT_GT(ef, 1.0); // the cap, not a propagated bound

  const ErrorAnalysisResult flt = analyze(*f, assign_all_except(*f, kF32));
  EXPECT_TRUE(flt.divergent_control);
  EXPECT_GT(flt.capped_bounds, 0);
  EXPECT_TRUE(flt.assumes_finite_run);
  EXPECT_TRUE(std::isfinite(flt.errors.of(B)));
}

TEST(ErrorBounds, RelativeNormalizesByRangeScale) {
  ir::Module m;
  ir::Function* f = build_add(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const ErrorAnalysisResult r =
      analyze_errors(*f, assign_all_except(*f, kF32), ranges);
  const ir::Value* C = f->arrays()[2].get();
  const double scale = ranges.of(C).max_magnitude();
  ASSERT_GT(scale, 0.0);
  EXPECT_NEAR(r.relative(C, ranges), r.errors.of(C) / scale, 1e-18);
}

// ---------------------------------------------------------------------------
// Error-aware lint rules (L008-L011): each fires on a dedicated negative
// case and stays silent without an ErrorMap.
// ---------------------------------------------------------------------------

TEST(LintNegative, L008BudgetExceeded) {
  ir::Module m;
  ir::Function* f = build_add(m);
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const TypeAssignment coarse = assign_all_except(*f, kBf16);
  const ErrorAnalysisResult r = analyze_errors(*f, coarse, ranges);
  LintOptions options;
  options.max_rel_error = 1e-9;
  const DiagnosticEngine engine =
      run_lint(*f, coarse, ranges, options, &r.errors);
  EXPECT_EQ(engine.count_code("L008"), 1);
  // Without the error analysis the rule is skipped, budget or not.
  EXPECT_EQ(run_lint(*f, coarse, ranges, options).count_code("L008"), 0);
  // Within budget under binary64.
  const TypeAssignment fine = assign_all_except(*f, kF64);
  const ErrorAnalysisResult r64 = analyze_errors(*f, fine, ranges);
  EXPECT_EQ(run_lint(*f, fine, ranges, options, &r64.errors).count_code("L008"),
            0);
}

TEST(LintNegative, L009ErrorDominatedOutput) {
  ir::Module m;
  KernelBuilder kb(m, "copy");
  Array* A = kb.array("A", {8}, 0.0, 0.4);
  Array* B = kb.array("B", {8}, 0.0, 0.4);
  kb.for_loop("i", 0, 8, [&](IVal i) { kb.store(kb.load(A, {i}), B, {i}); });
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  // Zero fractional bits: the quantization step (1.0) dwarfs the [0, 0.4]
  // value scale, so no stored bit is trustworthy.
  const TypeAssignment coarse =
      assign_all_except(*f, ConcreteType{numrep::kFixed16, 0});
  const ErrorAnalysisResult r = analyze_errors(*f, coarse, ranges);
  const DiagnosticEngine engine =
      run_lint(*f, coarse, ranges, LintOptions{}, &r.errors);
  EXPECT_GE(engine.count_code("L009"), 1);
}

TEST(LintNegative, L010CatastrophicCancellation) {
  ir::Module m;
  KernelBuilder kb(m, "cancel");
  const double w = 0x1p-20;
  Array* A = kb.array("A", {8}, 1.0, 1.0 + w);
  Array* B = kb.array("B", {8}, 1.0, 1.0 + w);
  Array* D = kb.array("D", {8}, -w, w);
  kb.for_loop("i", 0, 8, [&](IVal i) {
    kb.store(kb.load(A, {i}) - kb.load(B, {i}), D, {i});
  });
  ir::Function* f = kb.finish();
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const TypeAssignment assignment = assign_all_except(*f, kF32);
  const ErrorAnalysisResult r = analyze_errors(*f, assignment, ranges);
  const DiagnosticEngine engine =
      run_lint(*f, assignment, ranges, LintOptions{}, &r.errors);
  EXPECT_EQ(engine.count_code("L010"), 1);
}

TEST(LintNegative, L011PhiErrorImbalance) {
  // KernelBuilder lowers scalar cells through memory, so the real diamond
  // phi is written as textual IR. The branch is integer-steered (no
  // control divergence); one arm computes in bfloat16, the other in
  // binary64, so the merge phi joins errors > 2^20 apart.
  static const char* kText = R"(func @imbalance {
  array @A[8] range [1.0, 2.0]
  array @B[8] range [0.0, 5.0]
entry:
  br header
header:
  %0 = phi int [ 0, entry ], [ %9, latch ]
  %1 = icmp lt %0, 8
  condbr %1, body, exit
body:
  %2 = load @A[%0]
  %3 = icmp lt %0, 4
  condbr %3, then, else
then:
  %5 = add %2, %2
  br end
else:
  %6 = mul %2, 1.0
  br end
end:
  %7 = phi real [ %5, then ], [ %6, else ]
  store %7, @B[%0]
  br latch
latch:
  %9 = iadd %0, 1
  br header
exit:
  ret
}
)";
  ir::Module m;
  const ir::ParseResult parsed = ir::parse_function(m, kText);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ir::Function* f = parsed.function;

  TypeAssignment assignment = assign_all_except(*f, kF64);
  const Instruction* add = find_real_inst(*f, Opcode::Add);
  ASSERT_NE(add, nullptr);
  assignment.set(add, kBf16);

  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const ErrorAnalysisResult r = analyze_errors(*f, assignment, ranges);
  const DiagnosticEngine engine =
      run_lint(*f, assignment, ranges, LintOptions{}, &r.errors);
  EXPECT_GE(engine.count_code("L011"), 1);
  // Balanced precision on both arms: silent.
  const TypeAssignment uniform = assign_all_except(*f, kF64);
  const ErrorAnalysisResult ru = analyze_errors(*f, uniform, ranges);
  EXPECT_EQ(run_lint(*f, uniform, ranges, LintOptions{}, &ru.errors)
                .count_code("L011"),
            0);
}

} // namespace
} // namespace luis::analysis
