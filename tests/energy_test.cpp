#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "platform/energy.hpp"
#include "polybench/polybench.hpp"

namespace luis::platform {
namespace {

TEST(PowerModel, FactorOrderingFollowsDatapaths) {
  const PowerModel model;
  EXPECT_LT(power_factor("fix", model), power_factor("float", model));
  EXPECT_LT(power_factor("float", model), power_factor("double", model));
  EXPECT_EQ(power_factor("half", model), power_factor("float", model));
}

TEST(OpEnergy, ScalesOpTimeByPower) {
  const PowerModel model;
  const OpTimeTable& t = stm32_table();
  EXPECT_DOUBLE_EQ(op_energy(t, "add", "fix", model),
                   t.op_time("add", "fix") * model.fix);
  EXPECT_DOUBLE_EQ(op_energy(t, "mul", "double", model),
                   t.op_time("mul", "double") * model.dbl);
  // Casts carry the transfer surcharge.
  EXPECT_DOUBLE_EQ(op_energy(t, "cast_fix", "double", model),
                   t.op_time("cast_fix", "double") * model.cast * model.dbl);
}

TEST(SimulatedEnergy, SumsProfile) {
  interp::CostCounters counters;
  counters.count_op("add", "double");
  counters.non_real_ops = 10;
  const PowerModel model;
  CostModelOptions copt;
  copt.non_real_op_cost = 0.25;
  const double e = simulated_energy(counters, intel_table(), model, copt);
  EXPECT_DOUBLE_EQ(e, intel_table().op_time("add", "double") * model.dbl +
                          10 * 0.25 * model.non_real);
}

TEST(EnergySaving, MirrorsSpeedupFormula) {
  EXPECT_DOUBLE_EQ(energy_saving_percent(300.0, 100.0), 200.0);
  EXPECT_DOUBLE_EQ(energy_saving_percent(100.0, 100.0), 0.0);
}

TEST(EnergyObjective, FastPresetSavesEnergyOnPolybench) {
  // Tune for energy and verify the tuned kernel actually consumes less
  // simulated energy than the binary64 baseline.
  for (const char* name : {"gemm", "bicg"}) {
    ir::Module m;
    polybench::BuiltKernel kernel = polybench::build_kernel(name, m);

    interp::ArrayStore ref = kernel.inputs;
    interp::TypeAssignment binary64;
    const interp::RunResult base =
        run_function(*kernel.function, binary64, ref);
    ASSERT_TRUE(base.ok);

    core::TuningConfig config = core::TuningConfig::fast();
    config.metric = core::CostMetric::Energy;
    const core::PipelineResult tuned =
        core::tune_kernel(*kernel.function, stm32_table(), config);

    interp::ArrayStore out = kernel.inputs;
    const interp::RunResult run =
        run_function(*kernel.function, tuned.allocation.assignment, out);
    ASSERT_TRUE(run.ok);

    const double e_base = simulated_energy(base.counters, stm32_table());
    const double e_tuned = simulated_energy(run.counters, stm32_table());
    EXPECT_LT(e_tuned, e_base) << name;
  }
}

TEST(EnergyObjective, EnergyTuningNeverWorseThanTimeTuningInEnergy) {
  // The energy-optimized allocation must use at most as much energy as the
  // time-optimized one (same W1/W2, same platform).
  for (const char* name : {"gemm", "covariance", "trisolv"}) {
    ir::Module m1, m2;
    polybench::BuiltKernel k1 = polybench::build_kernel(name, m1);
    polybench::BuiltKernel k2 = polybench::build_kernel(name, m2);

    core::TuningConfig time_cfg = core::TuningConfig::fast();
    core::TuningConfig energy_cfg = core::TuningConfig::fast();
    energy_cfg.metric = core::CostMetric::Energy;

    const core::PipelineResult by_time =
        core::tune_kernel(*k1.function, intel_table(), time_cfg);
    const core::PipelineResult by_energy =
        core::tune_kernel(*k2.function, intel_table(), energy_cfg);

    interp::ArrayStore s1 = k1.inputs, s2 = k2.inputs;
    const interp::RunResult r1 =
        run_function(*k1.function, by_time.allocation.assignment, s1);
    const interp::RunResult r2 =
        run_function(*k2.function, by_energy.allocation.assignment, s2);
    ASSERT_TRUE(r1.ok && r2.ok);
    const double e1 = simulated_energy(r1.counters, intel_table());
    const double e2 = simulated_energy(r2.counters, intel_table());
    EXPECT_LE(e2, e1 * 1.02) << name; // 2% slack: Err term ties differ
  }
}

} // namespace
} // namespace luis::platform
